//! The directed edge-labeled graph type and its builder.

use crate::label::{ExtLabel, Label};
use crate::pair::Pair;
use std::collections::HashMap;

/// Dense vertex identifier (`u32`, per the small-integer-id guideline).
pub type VertexId = u32;

/// A directed edge-labeled graph `G = (V, E, L)` in its *extended* form.
///
/// Every base edge `(v, u, ℓ)` is stored twice: as `(v, u, ℓ)` and as the
/// inverse extended edge `(u, v, ℓ⁻¹)`, mirroring the paper's extension of
/// `E` and `L` (Sec. III-A). Two access paths are maintained:
///
/// * **adjacency**: per vertex, a vector of `(ext label, target)` entries
///   sorted by `(label, target)` — O(log d) membership, O(d) updates;
/// * **label-grouped pairs**: per extended label, a sorted vector of
///   [`Pair`]s — the relation `⟦ℓ⟧` used by index construction, LOOKUP
///   leaves of the baseline engines, and the matchers.
///
/// Both views are kept consistent under [`Graph::insert_edge`] /
/// [`Graph::remove_edge`], which the maintenance experiments
/// (Tables V–VII, Fig. 13) rely on. Multi-edges collapse (`E` is a set).
#[derive(Clone)]
pub struct Graph {
    vertex_names: Vec<String>,
    label_names: Vec<String>,
    /// Per-vertex adjacency of extended edges, sorted by `(label, target)`.
    adj: Vec<Vec<(u16, VertexId)>>,
    /// Per-extended-label sorted pair lists.
    label_pairs: Vec<Vec<Pair>>,
    base_edge_count: usize,
}

impl Graph {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> u32 {
        self.adj.len() as u32
    }

    /// Number of *base* edges (the paper's Table II counts `|E|` with
    /// inverses; that is `2 ×` this value).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.base_edge_count
    }

    /// Number of base labels `|L|` (Table II's `|L|` is `2 ×` this).
    #[inline]
    pub fn base_label_count(&self) -> u16 {
        self.label_names.len() as u16
    }

    /// Number of extended labels (`2 × |L|`).
    #[inline]
    pub fn ext_label_count(&self) -> u16 {
        (self.label_names.len() * 2) as u16
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count()
    }

    /// Iterates over all extended labels.
    pub fn ext_labels(&self) -> impl Iterator<Item = ExtLabel> + '_ {
        (0..self.ext_label_count()).map(ExtLabel)
    }

    /// Iterates over all base labels.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.base_label_count()).map(Label)
    }

    /// The sorted relation `⟦ℓ⟧ = {(v, u) | (v, u, ℓ) ∈ E}` for an extended
    /// label.
    #[inline]
    pub fn edge_pairs(&self, l: ExtLabel) -> &[Pair] {
        &self.label_pairs[l.0 as usize]
    }

    /// Whether the extended edge `(v, u, ℓ)` exists.
    pub fn has_edge(&self, v: VertexId, u: VertexId, l: ExtLabel) -> bool {
        self.adj[v as usize].binary_search(&(l.0, u)).is_ok()
    }

    /// The full extended adjacency of `v`, sorted by `(label, target)`.
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[(u16, VertexId)] {
        &self.adj[v as usize]
    }

    /// Sorted targets reachable from `v` via one extended edge labeled `l`.
    pub fn neighbors(&self, v: VertexId, l: ExtLabel) -> &[(u16, VertexId)] {
        let a = &self.adj[v as usize];
        let lo = a.partition_point(|&(x, _)| x < l.0);
        let hi = a.partition_point(|&(x, _)| x <= l.0);
        &a[lo..hi]
    }

    /// Out-degree of `v` restricted to extended label `l`.
    pub fn degree(&self, v: VertexId, l: ExtLabel) -> usize {
        self.neighbors(v, l).len()
    }

    /// Total extended degree of `v` (forward + inverse edges).
    #[inline]
    pub fn ext_degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum extended degree `d` over all vertices (Thm. 4.3's `d`).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Adds an isolated vertex, returning its id.
    pub fn add_vertex(&mut self, name: impl Into<String>) -> VertexId {
        let id = self.vertex_count();
        self.vertex_names.push(name.into());
        self.adj.push(Vec::new());
        id
    }

    /// Inserts the base edge `(v, u, ℓ)` together with its inverse extended
    /// edge. Returns `false` if it already existed.
    ///
    /// # Panics
    /// Panics if `v`, `u` or `ℓ` are out of range.
    pub fn insert_edge(&mut self, v: VertexId, u: VertexId, l: Label) -> bool {
        assert!(v < self.vertex_count() && u < self.vertex_count(), "vertex out of range");
        assert!(l.0 < self.base_label_count(), "label out of range");
        let fwd = (l.fwd().0, u);
        let idx = match self.adj[v as usize].binary_search(&fwd) {
            Ok(_) => return false,
            Err(i) => i,
        };
        self.adj[v as usize].insert(idx, fwd);
        let inv = (l.inv().0, v);
        let idx = self.adj[u as usize]
            .binary_search(&inv)
            .expect_err("forward edge absent but inverse present");
        self.adj[u as usize].insert(idx, inv);
        Self::insert_pair(&mut self.label_pairs[l.fwd().0 as usize], Pair::new(v, u));
        Self::insert_pair(&mut self.label_pairs[l.inv().0 as usize], Pair::new(u, v));
        self.base_edge_count += 1;
        true
    }

    /// Removes the base edge `(v, u, ℓ)` and its inverse extended edge.
    /// Returns `false` if it did not exist.
    pub fn remove_edge(&mut self, v: VertexId, u: VertexId, l: Label) -> bool {
        let fwd = (l.fwd().0, u);
        let idx = match self.adj[v as usize].binary_search(&fwd) {
            Ok(i) => i,
            Err(_) => return false,
        };
        self.adj[v as usize].remove(idx);
        let inv = (l.inv().0, v);
        let idx = self.adj[u as usize]
            .binary_search(&inv)
            .expect("forward edge present but inverse absent");
        self.adj[u as usize].remove(idx);
        Self::remove_pair(&mut self.label_pairs[l.fwd().0 as usize], Pair::new(v, u));
        Self::remove_pair(&mut self.label_pairs[l.inv().0 as usize], Pair::new(u, v));
        self.base_edge_count -= 1;
        true
    }

    /// Removes every edge incident to `v` (the paper's vertex-deletion
    /// procedure composes edge deletions) and returns the removed base
    /// edges as `(src, dst, label)` triples. The vertex id itself remains
    /// allocated but isolated.
    pub fn isolate_vertex(&mut self, v: VertexId) -> Vec<(VertexId, VertexId, Label)> {
        let incident: Vec<(u16, VertexId)> = self.adj[v as usize].clone();
        let mut removed = Vec::with_capacity(incident.len());
        for (el, t) in incident {
            let el = ExtLabel(el);
            let (src, dst) = if el.is_inverse() { (t, v) } else { (v, t) };
            if self.remove_edge(src, dst, el.base()) {
                removed.push((src, dst, el.base()));
            }
        }
        removed
    }

    /// Iterates over all base edges as `(v, u, label)`.
    pub fn base_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Label)> + '_ {
        self.labels()
            .flat_map(move |l| self.edge_pairs(l.fwd()).iter().map(move |p| (p.src(), p.dst(), l)))
    }

    /// The display name of a vertex.
    pub fn vertex_name(&self, v: VertexId) -> &str {
        &self.vertex_names[v as usize]
    }

    /// The display name of a base label.
    pub fn label_name(&self, l: Label) -> &str {
        &self.label_names[l.0 as usize]
    }

    /// The display form of an extended label (`name` or `name⁻¹`).
    pub fn ext_label_name(&self, l: ExtLabel) -> String {
        if l.is_inverse() {
            format!("{}⁻¹", self.label_name(l.base()))
        } else {
            self.label_name(l.base()).to_string()
        }
    }

    /// Looks up a vertex by name (linear scan; intended for examples/tests).
    pub fn vertex_named(&self, name: &str) -> Option<VertexId> {
        self.vertex_names.iter().position(|n| n == name).map(|i| i as u32)
    }

    /// Looks up a base label by name (linear scan over the small alphabet).
    pub fn label_named(&self, name: &str) -> Option<Label> {
        self.label_names.iter().position(|n| n == name).map(|i| Label(i as u16))
    }

    /// Looks up a vertex-tag label (`@tag`); see
    /// [`GraphBuilder::tag_vertex`].
    pub fn tag_label(&self, tag: &str) -> Option<Label> {
        self.label_named(&format!("@{tag}"))
    }

    /// Whether `v` carries the vertex tag.
    pub fn vertex_has_tag(&self, v: VertexId, tag: &str) -> bool {
        self.tag_label(tag).is_some_and(|l| self.has_edge(v, v, l.fwd()))
    }

    /// Approximate deep memory footprint in bytes (graph accounting used by
    /// the experiment harness).
    pub fn size_bytes(&self) -> usize {
        let adj: usize = self.adj.iter().map(|a| a.capacity() * 8 + 24).sum();
        let pairs: usize = self.label_pairs.iter().map(|p| p.capacity() * 8 + 24).sum();
        adj + pairs
    }

    /// Summary statistics of the graph (degree distribution, label skew).
    pub fn stats(&self) -> GraphStats {
        let n = self.vertex_count() as usize;
        let mut degrees: Vec<usize> = self.adj.iter().map(Vec::len).collect();
        degrees.sort_unstable();
        let max_degree = degrees.last().copied().unwrap_or(0);
        let median_degree = if n == 0 { 0 } else { degrees[n / 2] };
        let avg_degree = if n == 0 { 0.0 } else { degrees.iter().sum::<usize>() as f64 / n as f64 };
        let mut label_counts: Vec<usize> =
            self.labels().map(|l| self.edge_pairs(l.fwd()).len()).collect();
        label_counts.sort_unstable_by(|a, b| b.cmp(a));
        let label_skew = match (label_counts.first(), label_counts.last()) {
            (Some(&hi), Some(&lo)) if lo > 0 => hi as f64 / lo as f64,
            _ => f64::INFINITY,
        };
        GraphStats {
            vertices: self.vertex_count(),
            base_edges: self.edge_count(),
            base_labels: self.base_label_count(),
            max_degree,
            median_degree,
            avg_degree,
            label_skew,
        }
    }

    fn insert_pair(v: &mut Vec<Pair>, p: Pair) {
        if let Err(i) = v.binary_search(&p) {
            v.insert(i, p);
        }
    }

    fn remove_pair(v: &mut Vec<Pair>, p: Pair) {
        if let Ok(i) = v.binary_search(&p) {
            v.remove(i);
        }
    }
}

/// Summary statistics of a graph (extended-degree based).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub vertices: u32,
    /// Base (non-extended) edge count.
    pub base_edges: usize,
    /// Base label count.
    pub base_labels: u16,
    /// Maximum extended degree (Thm. 4.3's `d`).
    pub max_degree: usize,
    /// Median extended degree.
    pub median_degree: usize,
    /// Mean extended degree.
    pub avg_degree: f64,
    /// Most-frequent / least-frequent base label ratio (∞ if a label is
    /// unused).
    pub label_skew: f64,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("vertices", &self.vertex_count())
            .field("base_edges", &self.edge_count())
            .field("base_labels", &self.base_label_count())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Vertices and labels can be interned by name ([`GraphBuilder::vertex`],
/// [`GraphBuilder::label`]) or created anonymously in bulk
/// ([`GraphBuilder::ensure_vertices`], [`GraphBuilder::ensure_labels`]).
#[derive(Default)]
pub struct GraphBuilder {
    vertex_names: Vec<String>,
    vertex_index: HashMap<String, VertexId>,
    label_names: Vec<String>,
    label_index: HashMap<String, Label>,
    edges: Vec<(VertexId, VertexId, Label)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a vertex by name, returning its id.
    pub fn vertex(&mut self, name: &str) -> VertexId {
        if let Some(&id) = self.vertex_index.get(name) {
            return id;
        }
        let id = self.vertex_names.len() as VertexId;
        self.vertex_names.push(name.to_string());
        self.vertex_index.insert(name.to_string(), id);
        id
    }

    /// Ensures at least `n` anonymous vertices (named by their index) exist.
    pub fn ensure_vertices(&mut self, n: u32) {
        while (self.vertex_names.len() as u32) < n {
            let id = self.vertex_names.len();
            self.vertex_names.push(id.to_string());
        }
    }

    /// Interns a base label by name.
    pub fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.label_index.get(name) {
            return l;
        }
        let l = Label(self.label_names.len() as u16);
        self.label_names.push(name.to_string());
        self.label_index.insert(name.to_string(), l);
        l
    }

    /// Ensures at least `n` anonymous labels (named `l0`, `l1`, …) exist.
    pub fn ensure_labels(&mut self, n: u16) {
        while (self.label_names.len() as u16) < n {
            let name = format!("l{}", self.label_names.len());
            self.label(&name);
        }
    }

    /// Adds a base edge by vertex/label ids.
    pub fn add_edge(&mut self, v: VertexId, u: VertexId, l: Label) {
        self.edges.push((v, u, l));
    }

    /// Adds a base edge by names, interning as needed.
    pub fn add_edge_named(&mut self, v: &str, u: &str, l: &str) {
        let (v, u, l) = (self.vertex(v), self.vertex(u), self.label(l));
        self.add_edge(v, u, l);
    }

    /// Tags a vertex with a (vertex-label) tag — the standard encoding for
    /// vertex labels the paper's footnote 5 alludes to: a self-loop edge
    /// carrying the reserved label `@tag`. A CPQ can then filter endpoints
    /// by composing with the tag atom, e.g. `@person ∘ f` finds `f`-edges
    /// whose source is tagged `person`, and `@person ∩ id` all tagged
    /// vertices.
    pub fn tag_vertex(&mut self, v: &str, tag: &str) {
        let v = self.vertex(v);
        self.tag_vertex_id(v, tag);
    }

    /// Tags a vertex by id; see [`GraphBuilder::tag_vertex`].
    pub fn tag_vertex_id(&mut self, v: VertexId, tag: &str) {
        let l = self.label(&format!("@{tag}"));
        self.add_edge(v, v, l);
    }

    /// Finalizes the graph: sorts adjacency, collapses multi-edges, builds
    /// the per-label pair lists.
    pub fn build(self) -> Graph {
        let n = self.vertex_names.len();
        let nl = self.label_names.len();
        let mut adj: Vec<Vec<(u16, VertexId)>> = vec![Vec::new(); n];
        let mut label_pairs: Vec<Vec<Pair>> = vec![Vec::new(); nl * 2];
        let mut edges = self.edges;
        edges.sort_unstable();
        edges.dedup();
        for &(v, u, l) in &edges {
            assert!((v as usize) < n && (u as usize) < n, "edge endpoint out of range");
            assert!((l.0 as usize) < nl, "edge label out of range");
            adj[v as usize].push((l.fwd().0, u));
            adj[u as usize].push((l.inv().0, v));
            label_pairs[l.fwd().0 as usize].push(Pair::new(v, u));
            label_pairs[l.inv().0 as usize].push(Pair::new(u, v));
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        for p in &mut label_pairs {
            p.sort_unstable();
            p.dedup();
        }
        Graph {
            vertex_names: self.vertex_names,
            label_names: self.label_names,
            adj,
            label_pairs,
            base_edge_count: edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "b", "f");
        b.add_edge_named("b", "c", "f");
        b.add_edge_named("a", "c", "v");
        b.add_edge_named("c", "c", "f");
        b.build()
    }

    #[test]
    fn build_counts() {
        let g = tiny();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.base_label_count(), 2);
        assert_eq!(g.ext_label_count(), 4);
    }

    #[test]
    fn inverse_edges_are_materialized() {
        let g = tiny();
        let f = g.label_named("f").unwrap();
        let (a, b) = (g.vertex_named("a").unwrap(), g.vertex_named("b").unwrap());
        assert!(g.has_edge(a, b, f.fwd()));
        assert!(g.has_edge(b, a, f.inv()));
        assert!(!g.has_edge(b, a, f.fwd()));
        assert_eq!(g.edge_pairs(f.fwd()).len(), 3);
        assert_eq!(g.edge_pairs(f.inv()).len(), 3);
    }

    #[test]
    fn neighbors_are_label_scoped() {
        let g = tiny();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        let a = g.vertex_named("a").unwrap();
        let nf: Vec<_> = g.neighbors(a, f.fwd()).iter().map(|&(_, t)| t).collect();
        let nv: Vec<_> = g.neighbors(a, v.fwd()).iter().map(|&(_, t)| t).collect();
        assert_eq!(nf, vec![g.vertex_named("b").unwrap()]);
        assert_eq!(nv, vec![g.vertex_named("c").unwrap()]);
    }

    #[test]
    fn multi_edges_collapse() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "b", "f");
        b.add_edge_named("a", "b", "f");
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut g = tiny();
        let f = g.label_named("f").unwrap();
        let (a, c) = (g.vertex_named("a").unwrap(), g.vertex_named("c").unwrap());
        assert!(!g.has_edge(a, c, f.fwd()));
        assert!(g.insert_edge(a, c, f));
        assert!(!g.insert_edge(a, c, f), "duplicate insert must be a no-op");
        assert!(g.has_edge(a, c, f.fwd()));
        assert!(g.has_edge(c, a, f.inv()));
        assert_eq!(g.edge_count(), 5);
        assert!(g.remove_edge(a, c, f));
        assert!(!g.remove_edge(a, c, f));
        assert!(!g.has_edge(a, c, f.fwd()));
        assert!(!g.has_edge(c, a, f.inv()));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn insert_keeps_views_consistent() {
        let mut g = tiny();
        let f = g.label_named("f").unwrap();
        let (a, c) = (g.vertex_named("a").unwrap(), g.vertex_named("c").unwrap());
        g.insert_edge(a, c, f);
        assert!(g.edge_pairs(f.fwd()).windows(2).all(|w| w[0] < w[1]), "pair list stays sorted");
        assert!(g.edge_pairs(f.fwd()).contains(&Pair::new(a, c)));
        assert!(g.edge_pairs(f.inv()).contains(&Pair::new(c, a)));
    }

    #[test]
    fn isolate_vertex_removes_all_incident() {
        let mut g = tiny();
        let b = g.vertex_named("b").unwrap();
        let removed = g.isolate_vertex(b);
        assert_eq!(removed.len(), 2);
        assert_eq!(g.ext_degree(b), 0);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loop_handling() {
        let g = tiny();
        let f = g.label_named("f").unwrap();
        let c = g.vertex_named("c").unwrap();
        assert!(g.has_edge(c, c, f.fwd()));
        assert!(g.has_edge(c, c, f.inv()));
        assert!(g.edge_pairs(f.fwd()).contains(&Pair::new(c, c)));
    }

    #[test]
    fn add_vertex_grows() {
        let mut g = tiny();
        let d = g.add_vertex("d");
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.vertex_name(d), "d");
        assert_eq!(g.ext_degree(d), 0);
    }

    #[test]
    fn base_edges_iterates_forward_only() {
        let g = tiny();
        assert_eq!(g.base_edges().count(), g.edge_count());
    }

    #[test]
    fn vertex_tags_are_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("alice", "post1", "wrote");
        b.tag_vertex("alice", "person");
        b.tag_vertex("post1", "post");
        let g = b.build();
        let alice = g.vertex_named("alice").unwrap();
        let post = g.vertex_named("post1").unwrap();
        assert!(g.vertex_has_tag(alice, "person"));
        assert!(!g.vertex_has_tag(alice, "post"));
        assert!(g.vertex_has_tag(post, "post"));
        assert!(!g.vertex_has_tag(post, "person"));
        assert!(g.tag_label("person").is_some());
        assert!(g.tag_label("nosuch").is_none());
        // Tags are ordinary labels: the tag self-loop is a base edge.
        let tl = g.tag_label("person").unwrap();
        assert!(g.has_edge(alice, alice, tl.fwd()));
    }

    #[test]
    fn stats_summarize_structure() {
        let g = tiny();
        let s = g.stats();
        assert_eq!(s.vertices, 3);
        assert_eq!(s.base_edges, 4);
        assert_eq!(s.base_labels, 2);
        // c: f-in from b, self-loop f (both directions), v-in from a → 4.
        assert_eq!(s.max_degree, 4);
        assert!(s.avg_degree > 0.0);
        assert!(s.label_skew >= 1.0);
        // Empty graph: no panics, zeroed stats.
        let empty = GraphBuilder::new().build();
        let s = empty.stats();
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max_degree, 0);
    }
}
