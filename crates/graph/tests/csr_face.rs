//! CSR read-face correctness: forward/reverse faces agree with the
//! chunked rows, mutation invalidates exactly the touched chunks' faces
//! (and a rebuilt face sees the delta), clones share built faces by
//! pointer — plus the skewed multi-segment `PairList` point/range lookup
//! regression.

use cpqx_graph::{Graph, GraphBuilder, Pair};

/// A multi-chunk graph with a tiny chunk weight so chunk boundaries fall
/// inside the data.
fn chunky(n: u32, weight: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    let f = b.label("f");
    let v = b.label("v");
    for x in 0..n {
        b.add_edge(x, (x + 1) % n, f);
        b.add_edge(x, (x + 7) % n, f);
        if x % 3 == 0 {
            b.add_edge(x, (x + 2) % n, v);
        }
    }
    b.build_with_chunk_weight(weight)
}

/// A graph with one hub vertex carrying most of the edges — segments are
/// heavily skewed across chunks.
fn skewed(n: u32, weight: usize) -> Graph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n);
    let f = b.label("f");
    for x in 1..n {
        b.add_edge(0, x, f); // hub fan-out
        if x % 5 == 0 {
            b.add_edge(x, (x + 1) % n, f);
        }
    }
    b.build_with_chunk_weight(weight)
}

#[test]
fn forward_face_matches_adjacency_rows() {
    let g = chunky(64, 8);
    assert!(g.topology_chunk_count() > 4, "chunk boundaries must fall inside the data");
    for v in g.vertices() {
        for l in g.ext_labels() {
            let rows: Vec<u32> = g.neighbors(v, l).iter().map(|&(_, t)| t).collect();
            assert_eq!(g.csr_targets(v, l), rows.as_slice(), "targets of ({v}, {l:?})");
        }
    }
}

#[test]
fn reverse_face_is_the_swapped_segment() {
    let g = chunky(64, 8);
    for l in g.ext_labels() {
        for i in 0..g.topology_chunk_count() {
            let csr = g.csr_chunk(i);
            let lo = csr.start();
            let hi = lo + csr.rows();
            let mut expect: Vec<Pair> =
                g.edge_pairs(l).restrict_src(lo, hi).iter().map(|p| p.swap()).collect();
            expect.sort_unstable();
            let got: Vec<Pair> = match csr.face(l) {
                None => Vec::new(),
                Some(face) => face
                    .rev_groups()
                    .flat_map(|(t, srcs)| srcs.iter().map(move |&s| Pair::new(t, s)))
                    .collect(),
            };
            assert_eq!(got, expect, "reverse face of chunk {i}, label {l:?}");
            if let Some(face) = csr.face(l) {
                assert!(face.rev_keys().windows(2).all(|w| w[0] < w[1]), "keys strictly sorted");
                for (i, _) in face.rev_keys().iter().enumerate() {
                    let srcs = face.rev_sources(i);
                    assert!(!srcs.is_empty());
                    assert!(srcs.windows(2).all(|w| w[0] < w[1]), "sources strictly sorted");
                }
            }
        }
    }
}

#[test]
fn mutation_invalidates_touched_faces_and_rebuild_sees_delta() {
    let mut g = chunky(64, 8);
    let f = g.label_named("f").unwrap();
    g.ensure_csr();
    assert!((0..g.topology_chunk_count()).all(|i| g.csr_built(i)));

    // Repeated COW deltas: after each one, only the endpoint chunks lost
    // their face, and the rebuilt face answers with the delta applied.
    for (a, b, insert) in [(3u32, 40u32, true), (10, 55, true), (3, 40, false), (0, 1, false)] {
        let before = g.clone(); // keeps refcounts > 1: make_mut must copy
        let changed = if insert { g.insert_edge(a, b, f) } else { g.remove_edge(a, b, f) };
        assert!(changed);
        let stale: Vec<usize> =
            (0..g.topology_chunk_count()).filter(|&i| !g.csr_built(i)).collect();
        assert!(
            !stale.is_empty() && stale.len() <= 2,
            "exactly the endpoint chunks lose their face: {stale:?}"
        );
        for i in 0..g.topology_chunk_count() {
            assert_eq!(
                g.csr_built(i),
                g.topology_chunk_shared_with(&before, i),
                "face staleness must track chunk copies (chunk {i})"
            );
        }
        // Rebuilt faces see the new state; the predecessor still has the
        // old faces with the old answers.
        assert_eq!(g.csr_targets(a, f.fwd()).contains(&b), insert);
        assert_eq!(g.csr_targets(b, f.inv()).contains(&a), insert);
        assert_eq!(before.csr_targets(a, f.fwd()).contains(&b), !insert);
        for v in g.vertices() {
            let rows: Vec<u32> = g.neighbors(v, f.fwd()).iter().map(|&(_, t)| t).collect();
            assert_eq!(g.csr_targets(v, f.fwd()), rows.as_slice());
        }
        assert!((0..g.topology_chunk_count()).all(|i| g.csr_built(i)), "reads rebuilt all");
    }
}

#[test]
fn in_place_mutation_at_refcount_one_still_invalidates() {
    // No live clone: `Arc::make_mut` mutates in place, so only the
    // explicit take() protects readers from a stale face.
    let mut g = chunky(64, 8);
    let f = g.label_named("f").unwrap();
    g.ensure_csr();
    assert!(!g.csr_targets(3, f.fwd()).contains(&40));
    assert!(g.insert_edge(3, 40, f));
    assert!(g.csr_targets(3, f.fwd()).contains(&40), "face rebuilt after in-place write");
}

#[test]
fn clones_share_built_faces_until_mutation() {
    let base = chunky(64, 8);
    base.ensure_csr();
    let mut g = base.clone();
    for i in 0..g.topology_chunk_count() {
        assert!(g.csr_shared_with(&base, i), "clone shares every built face");
    }
    let f = g.label_named("f").unwrap();
    g.insert_edge(3, 40, f);
    g.ensure_csr();
    let shared: Vec<bool> =
        (0..g.topology_chunk_count()).map(|i| g.csr_shared_with(&base, i)).collect();
    let copied = shared.iter().filter(|&&s| !s).count();
    assert!((1..=2).contains(&copied), "only endpoint chunks rebuild: {shared:?}");
    for (i, &s) in shared.iter().enumerate() {
        assert_eq!(s, g.topology_chunk_shared_with(&base, i));
    }
}

#[test]
fn add_vertex_invalidates_grown_chunk() {
    let mut g = chunky(16, usize::MAX); // single topology chunk
    assert_eq!(g.topology_chunk_count(), 1);
    g.ensure_csr();
    let d = g.add_vertex("extra");
    assert!(!g.csr_built(0), "growing the last chunk drops its face");
    let f = g.label_named("f").unwrap();
    assert!(g.csr_targets(d, f.fwd()).is_empty(), "fresh vertex has an (empty) CSR row");
}

#[test]
fn skewed_multi_segment_pair_list_lookups() {
    // Regression for the linear-scan `PairList::contains`/`restrict_src`:
    // a hub-skewed relation spread over many chunks, probed at points,
    // boundaries, and ranges; answers must match the brute-force filter.
    let g = skewed(96, 4);
    let f = g.label_named("f").unwrap();
    assert!(g.topology_chunk_count() > 6, "skew must span many chunks");
    let all = g.edge_pairs(f.fwd());
    let flat = all.to_vec();
    assert_eq!(all.len(), flat.len());
    for &p in &flat {
        assert!(all.contains(p), "{p:?} present");
    }
    for p in [Pair::new(0, 0), Pair::new(2, 3), Pair::new(95, 0), Pair::new(200, 1)] {
        assert_eq!(all.contains(p), flat.contains(&p), "{p:?} membership");
    }
    for (lo, hi) in [(0, 1), (0, 96), (1, 96), (5, 6), (40, 41), (90, 200), (30, 30), (50, 40)] {
        let sub = all.restrict_src(lo, hi);
        let expect: Vec<Pair> =
            flat.iter().copied().filter(|p| p.src() >= lo && p.src() < hi).collect();
        assert_eq!(sub.len(), expect.len(), "restrict_src({lo}, {hi}) length");
        assert_eq!(sub.to_vec(), expect, "restrict_src({lo}, {hi}) contents");
        for &p in &expect {
            assert!(sub.contains(p));
        }
        // Membership outside the window must be rejected by the bounds
        // check, not found via a stray segment.
        if let Some(&outside) = flat.iter().find(|p| p.src() < lo || p.src() >= hi) {
            assert!(!sub.contains(outside));
        }
        // Nested restriction composes.
        let nested = sub.restrict_src(lo.saturating_add(1), hi);
        let expect2: Vec<Pair> = expect.iter().copied().filter(|p| p.src() > lo).collect();
        assert_eq!(nested.to_vec(), expect2);
        assert_eq!(nested.len(), expect2.len());
    }
}

#[test]
fn concurrent_lazy_build_races_are_safe() {
    let g = chunky(64, 8);
    let f = g.label_named("f").unwrap();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for v in g.vertices() {
                    let rows: Vec<u32> = g.neighbors(v, f.fwd()).iter().map(|&(_, t)| t).collect();
                    assert_eq!(g.csr_targets(v, f.fwd()), rows.as_slice());
                }
            });
        }
    });
    assert!((0..g.topology_chunk_count()).all(|i| g.csr_built(i)));
}
