//! Property test: the graph's two access paths — per-vertex adjacency and
//! per-label pair lists — stay mutually consistent under arbitrary
//! insert/remove/isolate sequences (the maintenance experiments depend on
//! this invariant).

use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_graph::{ExtLabel, Graph, Label, Pair};
use proptest::prelude::*;

fn check_views(g: &Graph) {
    // Every adjacency entry appears in the label's pair list and vice versa.
    let mut from_adj: Vec<(u16, Pair)> = Vec::new();
    for v in g.vertices() {
        for &(l, t) in g.adjacency(v) {
            from_adj.push((l, Pair::new(v, t)));
        }
    }
    from_adj.sort_unstable();
    let mut from_pairs: Vec<(u16, Pair)> = Vec::new();
    for l in g.ext_labels() {
        let pairs = g.edge_pairs(l).to_vec();
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "pair list sorted+deduped");
        assert_eq!(pairs.len(), g.edge_pairs(l).len());
        for &p in &pairs {
            from_pairs.push((l.0, p));
        }
    }
    from_pairs.sort_unstable();
    assert_eq!(from_adj, from_pairs, "adjacency and pair views diverged");
    // Forward/inverse mirror property.
    for l in g.labels() {
        let fwd = g.edge_pairs(l.fwd());
        let inv = g.edge_pairs(l.inv());
        assert_eq!(fwd.len(), inv.len());
        for p in fwd.iter() {
            assert!(inv.contains(p.swap()), "missing inverse of {p:?}");
        }
    }
    // Edge count equals forward pairs.
    let forward_total: usize = g.labels().map(|l| g.edge_pairs(l.fwd()).len()).sum();
    assert_eq!(forward_total, g.edge_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn views_stay_consistent_under_updates(
        seed in 0u64..500,
        script in prop::collection::vec((0u32..30, 0u32..30, 0u16..3, 0u8..3), 0..40),
    ) {
        let cfg = RandomGraphConfig::social(30, 80, 3, seed);
        let mut g = random_graph(&cfg);
        check_views(&g);
        for (v, u, l, op) in script {
            let v = v % g.vertex_count();
            let u = u % g.vertex_count();
            let l = Label(l % g.base_label_count());
            match op {
                0 => {
                    g.insert_edge(v, u, l);
                }
                1 => {
                    g.remove_edge(v, u, l);
                }
                _ => {
                    g.isolate_vertex(v);
                }
            }
        }
        check_views(&g);
    }

    #[test]
    fn has_edge_agrees_with_pair_lists(seed in 0u64..200) {
        let cfg = RandomGraphConfig::uniform(25, 70, 2, seed);
        let g = random_graph(&cfg);
        for v in g.vertices() {
            for u in g.vertices() {
                for l in g.ext_labels() {
                    let via_adj = g.has_edge(v, u, l);
                    let via_pairs = g.edge_pairs(l).contains(Pair::new(v, u));
                    prop_assert_eq!(via_adj, via_pairs);
                }
            }
        }
    }

    #[test]
    fn neighbors_slice_is_exact(seed in 0u64..200) {
        let cfg = RandomGraphConfig::social(25, 70, 3, seed);
        let g = random_graph(&cfg);
        for v in g.vertices() {
            let mut total = 0;
            for l in g.ext_labels() {
                let slice = g.neighbors(v, l);
                prop_assert!(slice.iter().all(|&(ll, _)| ExtLabel(ll) == l));
                for &(_, t) in slice {
                    prop_assert!(g.has_edge(v, t, l));
                }
                total += slice.len();
            }
            prop_assert_eq!(total, g.ext_degree(v));
        }
    }
}
