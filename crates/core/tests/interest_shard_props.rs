//! Property tests for the sharded interest-aware build: merging
//! `interest_partition_range` shards over any tiling of source ranges is
//! query-equivalent to the sequential `interest_partition` — identical
//! pair universe, identical per-pair `(cyclicity, L≤k ∩ Lq)` class data,
//! identical class counts — across random graphs and random interest
//! subsets, including the **empty** interest set (length-1 sequences
//! only) and **full-coverage** sets (every length-2 sequence, making
//! iaCPQx as fine as CPQx at k = 2). The shard maps run on the real
//! thread pool, so the concurrency path itself is exercised.

use cpqx_core::{interest_partition, interest_partition_range, merge_partitions, Partition};
use cpqx_core::{normalize_interests, pool, CpqxIndex};
use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_graph::{Graph, LabelSeq, Pair};
use proptest::prelude::*;
use std::collections::BTreeSet;

const K: usize = 2;
const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Builds the sharded partition at `shards` ranges on `shards` workers.
fn sharded(g: &Graph, lq: &BTreeSet<LabelSeq>, shards: usize) -> Partition {
    let ranges = g.balanced_src_ranges(shards);
    let parts = pool::parallel_map(ranges, shards, |r| interest_partition_range(g, K, lq, r));
    merge_partitions(parts)
}

fn assert_query_equivalent(g: &Graph, lq: &BTreeSet<LabelSeq>, ctx: &str) {
    let seq = interest_partition(g, K, lq);
    let lookup: std::collections::HashMap<Pair, u32> = seq.pair_classes.iter().copied().collect();
    let ia_seq = CpqxIndex::from_partition(K, Some(lq.clone()), interest_partition(g, K, lq));
    for &shards in &SHARD_COUNTS {
        let merged = sharded(g, lq, shards);
        assert_eq!(merged.pair_count(), seq.pair_count(), "{shards} shards ({ctx})");
        assert_eq!(merged.class_count(), seq.class_count(), "{shards} shards ({ctx})");
        for &(p, c) in &merged.pair_classes {
            let sc = *lookup.get(&p).unwrap_or_else(|| panic!("extra pair {p:?} ({ctx})"));
            assert_eq!(
                merged.class_seqs[c as usize], seq.class_seqs[sc as usize],
                "pair {p:?} carries different interest intersection ({ctx})"
            );
            assert_eq!(merged.class_loop[c as usize], seq.class_loop[sc as usize]);
        }
        // The materialized indexes answer identically — the property the
        // planner/executor actually rely on.
        let ia_par = CpqxIndex::from_partition(K, Some(lq.clone()), merged);
        for l in g.ext_labels() {
            let q = cpqx_query::Cpq::Label(l);
            assert_eq!(ia_par.evaluate(g, &q), ia_seq.evaluate(g, &q), "label {l:?} ({ctx})");
        }
        for s in lq {
            let mut q = cpqx_query::Cpq::Label(s.get(0));
            for i in 1..s.len() {
                q = q.join(cpqx_query::Cpq::Label(s.get(i)));
            }
            assert_eq!(ia_par.evaluate(g, &q), ia_seq.evaluate(g, &q), "seq {s:?} ({ctx})");
        }
    }
}

/// A deterministic interest set over the graph's alphabet from raw index
/// picks (normalized, possibly empty).
fn interests_from_picks(g: &Graph, picks: &[(u16, u16)]) -> BTreeSet<LabelSeq> {
    let labels: Vec<_> = g.ext_labels().collect();
    if labels.is_empty() {
        return BTreeSet::new();
    }
    normalize_interests(
        picks.iter().map(|&(a, b)| {
            LabelSeq::from_slice(&[
                labels[a as usize % labels.len()],
                labels[b as usize % labels.len()],
            ])
        }),
        K,
    )
}

/// All length-2 sequences over the alphabet — full coverage at k = 2.
fn full_coverage(g: &Graph) -> BTreeSet<LabelSeq> {
    let labels: Vec<_> = g.ext_labels().collect();
    normalize_interests(
        labels.iter().flat_map(|&a| labels.iter().map(move |&b| LabelSeq::from_slice(&[a, b]))),
        K,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_interest_subsets(
        seed in 0u64..100_000,
        picks in prop::collection::vec((0u16..12, 0u16..12), 0..6),
    ) {
        let g = random_graph(&RandomGraphConfig::social(50, 210, 3, seed));
        let lq = interests_from_picks(&g, &picks);
        assert_query_equivalent(&g, &lq, &format!("seed={seed} picks={picks:?}"));
    }

    #[test]
    fn empty_and_full_coverage_interest_sets(seed in 0u64..100_000) {
        let g = random_graph(&RandomGraphConfig::uniform(40, 170, 3, seed));
        // Empty: only the implicit length-1 sequences are indexed.
        assert_query_equivalent(&g, &BTreeSet::new(), &format!("empty seed={seed}"));
        // Full coverage: every length-2 sequence is an interest.
        assert_query_equivalent(&g, &full_coverage(&g), &format!("full seed={seed}"));
    }
}

#[test]
fn degenerate_graphs_and_ranges() {
    let empty = cpqx_graph::GraphBuilder::new().build();
    assert_query_equivalent(&empty, &BTreeSet::new(), "empty graph");

    let mut b = cpqx_graph::GraphBuilder::new();
    b.ensure_vertices(7);
    b.ensure_labels(2);
    let edgeless = b.build();
    assert_query_equivalent(&edgeless, &BTreeSet::new(), "edgeless graph");

    // An empty source range yields an empty partition and merges away.
    let g = cpqx_graph::generate::gex();
    let lq = full_coverage(&g);
    let p = interest_partition_range(&g, K, &lq, 3..3);
    assert_eq!(p.pair_count(), 0);
    assert_eq!(p.class_count(), 0);
    assert_eq!(merge_partitions(vec![p]).pair_count(), 0);
}

#[test]
fn gex_matches_paper_partition_under_sharding() {
    let g = cpqx_graph::generate::gex();
    let f = g.label_named("f").unwrap();
    let lq = normalize_interests([LabelSeq::from_slice(&[f.fwd(), f.fwd()])], K);
    assert_query_equivalent(&g, &lq, "gex ff");
}
