//! End-to-end correctness of CPQx/iaCPQx query processing against the
//! reference semantics, plus the paper's worked examples (Example 4.1/4.3)
//! and the size relation of Thm. 4.2's quantities.

use cpqx_core::{normalize_interests, CpqxIndex};
use cpqx_graph::generate;
use cpqx_graph::{ExtLabel, LabelSeq, Pair};
use cpqx_query::ast::Template;
use cpqx_query::eval::eval_reference;
use cpqx_query::{parse_cpq, Cpq};
use rand::{Rng, SeedableRng};

fn named(g: &cpqx_graph::Graph, p: Pair) -> (String, String) {
    (g.vertex_name(p.src()).to_string(), g.vertex_name(p.dst()).to_string())
}

#[test]
fn triad_example_4_3() {
    // Example 4.3: evaluating ﬀ ∩ f⁻¹ intersects two small class-id lists
    // and returns the triad pairs.
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
    let result = idx.evaluate(&g, &q);
    let got: std::collections::BTreeSet<_> = result.iter().map(|&p| named(&g, p)).collect();
    let expected: std::collections::BTreeSet<_> = [
        ("sue".to_string(), "zoe".to_string()),
        ("joe".to_string(), "sue".to_string()),
        ("zoe".to_string(), "joe".to_string()),
    ]
    .into_iter()
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn triad_lookups_share_one_class() {
    // Example 4.1/4.3: Il2c(ﬀ) and Il2c(f⁻¹) overlap in exactly the triad
    // class on Gex.
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    let f = g.label_named("f").unwrap();
    let ff = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
    let finv = LabelSeq::single(f.inv());
    let a = idx.lookup(&ff);
    let b = idx.lookup(&finv);
    let common: Vec<_> = a.iter().filter(|c| b.contains(c)).collect();
    assert_eq!(common.len(), 1, "exactly one shared class");
    assert_eq!(idx.class_pairs(*common[0]).len(), 3, "the triad class has 3 pairs");
}

#[test]
fn cpqx_matches_reference_on_gex_all_templates_all_k() {
    let g = generate::gex();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for k in 1..=3 {
        let idx = CpqxIndex::build(&g, k);
        for t in Template::ALL {
            for _ in 0..5 {
                let labels: Vec<ExtLabel> = (0..t.arity())
                    .map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count())))
                    .collect();
                let q = t.instantiate(&labels);
                assert_eq!(
                    idx.evaluate(&g, &q),
                    eval_reference(&g, &q),
                    "k={k} template {} labels {labels:?}",
                    t.name()
                );
            }
        }
    }
}

#[test]
fn cpqx_matches_reference_on_random_graphs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    for seed in 0..4u64 {
        let cfg = generate::RandomGraphConfig::social(60, 260, 3, seed);
        let g = generate::random_graph(&cfg);
        let idx = CpqxIndex::build(&g, 2);
        for t in Template::ALL {
            for _ in 0..3 {
                let labels: Vec<ExtLabel> = (0..t.arity())
                    .map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count())))
                    .collect();
                let q = t.instantiate(&labels);
                assert_eq!(
                    idx.evaluate(&g, &q),
                    eval_reference(&g, &q),
                    "seed={seed} template {}",
                    t.name()
                );
            }
        }
    }
}

#[test]
fn ia_cpqx_matches_reference_even_off_interest() {
    // iaCPQx must answer arbitrary CPQs, including ones whose sequences are
    // not interests (the planner splits them into length-1 lookups).
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let cfg = generate::RandomGraphConfig::social(60, 260, 3, 17);
    let g = generate::random_graph(&cfg);
    // Interests: a couple of 2-sequences only.
    let interests = [
        LabelSeq::from_slice(&[ExtLabel(0), ExtLabel(1)]),
        LabelSeq::from_slice(&[ExtLabel(2), ExtLabel(2)]),
    ];
    let idx = CpqxIndex::build_interest_aware(&g, 2, interests);
    for t in Template::ALL {
        for _ in 0..4 {
            let labels: Vec<ExtLabel> =
                (0..t.arity()).map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count()))).collect();
            let q = t.instantiate(&labels);
            assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "template {}", t.name());
        }
    }
}

#[test]
fn ia_cpqx_with_full_interests_matches_reference() {
    let g = generate::gex();
    // Interests = every non-empty 2-sequence: behaves like a full index.
    let mut interests = Vec::new();
    for a in g.ext_labels() {
        for b in g.ext_labels() {
            interests.push(LabelSeq::from_slice(&[a, b]));
        }
    }
    let idx = CpqxIndex::build_interest_aware(&g, 2, interests);
    let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
    let q = parse_cpq("((v . v^-1) & (f . f^-1)) & id", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
}

#[test]
fn identity_heavy_queries() {
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    for src in
        ["id", "(f . f^-1) & id", "((f . f) . f) & id", "(v . v^-1) & id", "f . id", "id . f"]
    {
        let q = parse_cpq(src, &g).unwrap();
        assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "query {src}");
    }
}

#[test]
fn deep_chains_beyond_k_are_joined() {
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    // Diameter-6 chain on a k=2 index: three lookups, two joins.
    let q = parse_cpq("f . f . f^-1 . v . v^-1 . f", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
}

#[test]
fn evaluate_first_agrees_with_full_evaluation() {
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
    let full = idx.evaluate(&g, &q);
    let first = idx.evaluate_first(&g, &q).unwrap();
    assert!(full.contains(&first));
    let empty = parse_cpq("(v . v) & f", &g).unwrap(); // v targets blogs; no v·v path
    assert!(idx.evaluate_first(&g, &empty).is_none());
    assert!(idx.evaluate(&g, &empty).is_empty());
}

#[test]
fn thm_4_2_size_quantities() {
    // γ|C| + |P≤k| ≤ γ|P≤k| whenever γ ≥ 1 and |C| ≤ |P≤k| — check the
    // concrete quantities on real partitions.
    for seed in 0..3u64 {
        let cfg = generate::RandomGraphConfig::social(80, 400, 4, seed);
        let g = generate::random_graph(&cfg);
        let idx = CpqxIndex::build(&g, 2);
        let s = idx.stats();
        assert!(s.classes <= s.pairs, "|C| ≤ |P≤k|");
        let cpqx_size = s.gamma * s.classes as f64 + s.pairs as f64;
        let path_size = s.gamma * s.pairs as f64;
        assert!(
            cpqx_size <= path_size + f64::EPSILON,
            "γ|C|+|P| = {cpqx_size} vs γ|P| = {path_size}"
        );
    }
}

#[test]
fn interest_normalization_feeds_planner() {
    // A 3-interest on a k=2 index gets split at build time; queries using
    // the long sequence still evaluate correctly.
    let g = generate::gex();
    let f = g.label_named("f").unwrap();
    let long = LabelSeq::from_slice(&[f.fwd(), f.fwd(), f.fwd()]);
    let lq = normalize_interests([long], 2);
    assert!(lq.iter().all(|s| s.len() <= 2));
    let idx = CpqxIndex::build_interest_aware(&g, 2, lq);
    let q = parse_cpq("f . f . f", &g).unwrap();
    assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
}

#[test]
fn stats_are_consistent() {
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    let s = idx.stats();
    assert_eq!(s.k, 2);
    assert_eq!(s.classes, idx.live_class_count());
    assert_eq!(s.pairs, idx.pair_count());
    assert!(s.gamma >= 1.0, "every indexed pair has at least one sequence");
    assert!(s.core_bytes > 0 && s.total_bytes > s.core_bytes);
    // Posting lists are sorted and within range.
    let f = g.label_named("f").unwrap();
    let cs = idx.lookup(&LabelSeq::single(f.fwd()));
    assert!(cs.windows(2).all(|w| w[0] < w[1]));
    assert!(cs.iter().all(|&c| (c as usize) < idx.class_slots()));
}

#[test]
fn random_cpqs_structural_fuzz() {
    // Random CPQ ASTs (not just templates) against the oracle.
    fn random_cpq(rng: &mut impl Rng, depth: usize, nl: u16) -> Cpq {
        if depth == 0 || rng.gen_bool(0.4) {
            if rng.gen_bool(0.08) {
                Cpq::Id
            } else {
                Cpq::ext(ExtLabel(rng.gen_range(0..nl)))
            }
        } else if rng.gen_bool(0.5) {
            Cpq::Join(
                Box::new(random_cpq(rng, depth - 1, nl)),
                Box::new(random_cpq(rng, depth - 1, nl)),
            )
        } else {
            Cpq::Conj(
                Box::new(random_cpq(rng, depth - 1, nl)),
                Box::new(random_cpq(rng, depth - 1, nl)),
            )
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let g = generate::gex();
    let idx = CpqxIndex::build(&g, 2);
    for i in 0..60 {
        let q = random_cpq(&mut rng, 3, g.ext_label_count());
        assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q), "fuzz case {i}: {q:?}");
    }
}
