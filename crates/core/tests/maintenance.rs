//! Lazy-maintenance correctness (Prop. 4.2): after arbitrary sequences of
//! edge / vertex / interest updates, query results must equal both the
//! reference semantics on the updated graph and a freshly rebuilt index —
//! even though the lazy index's classes are fragmented.

use cpqx_core::CpqxIndex;
use cpqx_graph::generate;
use cpqx_graph::{ExtLabel, Label, LabelSeq};
use cpqx_query::ast::Template;
use cpqx_query::eval::eval_reference;
use cpqx_query::parse_cpq;
use rand::{Rng, SeedableRng};

fn check_against_reference(g: &cpqx_graph::Graph, idx: &CpqxIndex, seed: u64, cases: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for t in Template::ALL {
        for _ in 0..cases {
            let labels: Vec<ExtLabel> =
                (0..t.arity()).map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count()))).collect();
            let q = t.instantiate(&labels);
            assert_eq!(idx.evaluate(g, &q), eval_reference(g, &q), "template {}", t.name());
        }
    }
}

#[test]
fn single_edge_deletion_example_4_4() {
    // Example 4.4: delete (ada, tim) with f from Gex; affected pairs split
    // off, pairs with alternative paths stay put, queries stay correct.
    let mut g = generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let (ada, tim) = (g.vertex_named("ada").unwrap(), g.vertex_named("tim").unwrap());
    let f = g.label_named("f").unwrap();
    assert!(idx.delete_edge(&mut g, ada, tim, f));
    assert!(!idx.delete_edge(&mut g, ada, tim, f), "double delete is a no-op");
    check_against_reference(&g, &idx, 1, 4);
    // (ada, tim) now only connects via v·v⁻¹ (both visit blog 123).
    let q = parse_cpq("f", &g).unwrap();
    let pairs = idx.evaluate(&g, &q);
    assert!(!pairs.contains(&cpqx_graph::Pair::new(ada, tim)));
    let q = parse_cpq("v . v^-1", &g).unwrap();
    assert!(idx.evaluate(&g, &q).contains(&cpqx_graph::Pair::new(ada, tim)));
}

#[test]
fn edge_insertion_creates_new_pairs() {
    let mut g = generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let (flo, jon) = (g.vertex_named("flo").unwrap(), g.vertex_named("jon").unwrap());
    let f = g.label_named("f").unwrap();
    assert!(idx.insert_edge(&mut g, flo, jon, f));
    assert!(!idx.insert_edge(&mut g, flo, jon, f), "duplicate insert is a no-op");
    check_against_reference(&g, &idx, 2, 4);
    let q = parse_cpq("f", &g).unwrap();
    assert!(idx.evaluate(&g, &q).contains(&cpqx_graph::Pair::new(flo, jon)));
}

#[test]
fn random_update_storm_full_index() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let cfg = generate::RandomGraphConfig::social(50, 200, 3, 3);
    let mut g = generate::random_graph(&cfg);
    let mut idx = CpqxIndex::build(&g, 2);
    for round in 0..40 {
        let v = rng.gen_range(0..g.vertex_count());
        let u = rng.gen_range(0..g.vertex_count());
        let l = Label(rng.gen_range(0..g.base_label_count()));
        if rng.gen_bool(0.5) {
            idx.insert_edge(&mut g, v, u, l);
        } else {
            idx.delete_edge(&mut g, v, u, l);
        }
        if round % 10 == 9 {
            check_against_reference(&g, &idx, round as u64, 2);
        }
    }
    // Final full check and comparison with a rebuild.
    check_against_reference(&g, &idx, 99, 3);
    let fresh = CpqxIndex::build(&g, 2);
    assert_eq!(idx.pair_count(), fresh.pair_count(), "same indexed pair set");
    assert!(
        idx.class_slots() >= fresh.class_slots(),
        "lazy maintenance never has fewer class slots than a rebuild"
    );
}

#[test]
fn random_update_storm_interest_aware() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let cfg = generate::RandomGraphConfig::social(50, 200, 3, 5);
    let mut g = generate::random_graph(&cfg);
    let interests = [
        LabelSeq::from_slice(&[ExtLabel(0), ExtLabel(1)]),
        LabelSeq::from_slice(&[ExtLabel(2), ExtLabel(0)]),
    ];
    let mut idx = CpqxIndex::build_interest_aware(&g, 2, interests);
    for round in 0..30 {
        let v = rng.gen_range(0..g.vertex_count());
        let u = rng.gen_range(0..g.vertex_count());
        let l = Label(rng.gen_range(0..g.base_label_count()));
        if rng.gen_bool(0.5) {
            idx.insert_edge(&mut g, v, u, l);
        } else {
            idx.delete_edge(&mut g, v, u, l);
        }
        if round % 10 == 9 {
            check_against_reference(&g, &idx, round as u64, 2);
        }
    }
    check_against_reference(&g, &idx, 101, 3);
}

#[test]
fn interest_insertion_and_deletion() {
    let cfg = generate::RandomGraphConfig::social(60, 300, 3, 9);
    let g = generate::random_graph(&cfg);
    let mut idx =
        CpqxIndex::build_interest_aware(&g, 2, [LabelSeq::from_slice(&[ExtLabel(0), ExtLabel(1)])]);
    // Insert a new interest: queries using it should now take one lookup.
    let new_seq = LabelSeq::from_slice(&[ExtLabel(1), ExtLabel(2)]);
    assert!(idx.insert_interest(&g, new_seq));
    assert!(!idx.insert_interest(&g, new_seq), "duplicate interest insert");
    assert!(idx.is_indexed(&new_seq));
    check_against_reference(&g, &idx, 3, 3);
    // Compare the lookup against a from-scratch interest-aware index.
    let fresh = CpqxIndex::build_interest_aware(
        &g,
        2,
        [LabelSeq::from_slice(&[ExtLabel(0), ExtLabel(1)]), new_seq],
    );
    let via_lazy: Vec<_> = {
        let mut ps = Vec::new();
        for &c in idx.lookup(&new_seq) {
            ps.extend_from_slice(idx.class_pairs(c));
        }
        ps.sort_unstable();
        ps
    };
    let via_fresh: Vec<_> = {
        let mut ps = Vec::new();
        for &c in fresh.lookup(&new_seq) {
            ps.extend_from_slice(fresh.class_pairs(c));
        }
        ps.sort_unstable();
        ps
    };
    assert_eq!(via_lazy, via_fresh, "lazy interest insertion indexes the same pairs");

    // Delete it again: no longer indexed, queries still correct.
    assert!(idx.delete_interest(&new_seq));
    assert!(!idx.delete_interest(&new_seq));
    assert!(!idx.is_indexed(&new_seq));
    check_against_reference(&g, &idx, 4, 3);
}

#[test]
fn vertex_lifecycle() {
    let mut g = generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    // Insert a vertex and wire it in.
    let newbie = idx.add_vertex(&mut g, "newbie");
    let f = g.label_named("f").unwrap();
    let sue = g.vertex_named("sue").unwrap();
    idx.insert_edge(&mut g, newbie, sue, f);
    check_against_reference(&g, &idx, 11, 3);
    // Delete a high-degree vertex entirely.
    let ada = g.vertex_named("ada").unwrap();
    idx.delete_vertex(&mut g, ada);
    assert_eq!(g.ext_degree(ada), 0);
    check_against_reference(&g, &idx, 12, 3);
    // Ada participates in no answers any more.
    let q = parse_cpq("f", &g).unwrap();
    assert!(idx.evaluate(&g, &q).iter().all(|p| p.src() != ada && p.dst() != ada));
}

#[test]
fn deletion_then_reinsertion_roundtrip() {
    // Deleting and re-inserting the same edge must restore exactly the
    // original answers (classes may differ — that is the lazy part).
    let mut g = generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let before: Vec<_> = ["f", "f . f", "(f . f) & f^-1", "(v . v^-1) & id"]
        .iter()
        .map(|s| idx.evaluate(&g, &parse_cpq(s, &g).unwrap()))
        .collect();
    let (sue, joe) = (g.vertex_named("sue").unwrap(), g.vertex_named("joe").unwrap());
    let f = g.label_named("f").unwrap();
    idx.delete_edge(&mut g, sue, joe, f);
    idx.insert_edge(&mut g, sue, joe, f);
    let after: Vec<_> = ["f", "f . f", "(f . f) & f^-1", "(v . v^-1) & id"]
        .iter()
        .map(|s| idx.evaluate(&g, &parse_cpq(s, &g).unwrap()))
        .collect();
    assert_eq!(before, after);
}

#[test]
fn rebuild_defragments() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let cfg = generate::RandomGraphConfig::social(50, 200, 3, 21);
    let mut g = generate::random_graph(&cfg);
    let mut idx = CpqxIndex::build(&g, 2);
    for _ in 0..25 {
        let v = rng.gen_range(0..g.vertex_count());
        let u = rng.gen_range(0..g.vertex_count());
        let l = Label(rng.gen_range(0..g.base_label_count()));
        if rng.gen_bool(0.5) {
            idx.insert_edge(&mut g, v, u, l);
        } else {
            idx.delete_edge(&mut g, v, u, l);
        }
    }
    let fragmented_slots = idx.class_slots();
    idx.rebuild(&g);
    assert!(idx.class_slots() <= fragmented_slots);
    assert_eq!(idx.class_slots(), idx.live_class_count(), "no tombstones after rebuild");
    check_against_reference(&g, &idx, 31, 3);
}

#[test]
fn change_edge_label() {
    let mut g = generate::gex();
    let mut idx = CpqxIndex::build(&g, 2);
    let (sue, joe) = (g.vertex_named("sue").unwrap(), g.vertex_named("joe").unwrap());
    let f = g.label_named("f").unwrap();
    let v = g.label_named("v").unwrap();
    assert!(idx.change_edge_label(&mut g, sue, joe, f, v));
    check_against_reference(&g, &idx, 17, 3);
    assert!(g.has_edge(sue, joe, v.fwd()));
    assert!(!g.has_edge(sue, joe, f.fwd()));
}
