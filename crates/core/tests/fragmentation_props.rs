//! Fragmentation properties of lazy maintenance (Prop. 4.2 / Table VII):
//! the lazy update procedures never *merge* classes — affected pairs are
//! detached into fresh classes — so between full builds the class-slot
//! count grows monotonically, pre-existing classes only ever lose
//! members, and `rebuild` restores exactly the minimal partition a fresh
//! build produces.

use cpqx_core::CpqxIndex;
use cpqx_graph::{generate, Label, LabelSeq, Pair};
use proptest::prelude::*;

/// `(kind, src, dst, label)` — a random maintenance op over a graph with
/// `vertices` vertices and `labels` base labels.
fn op_strategy(vertices: u32, labels: u16) -> impl Strategy<Value = (u8, u32, u32, u16)> {
    (0u8..4, 0u32..vertices, 0u32..vertices, 0u16..labels)
}

fn apply_op(g: &mut cpqx_graph::Graph, idx: &mut CpqxIndex, op: (u8, u32, u32, u16), labels: u16) {
    let (kind, a, b, l) = op;
    match kind {
        0 => {
            idx.insert_edge(g, a, b, Label(l));
        }
        1 => {
            idx.delete_edge(g, a, b, Label(l));
        }
        2 => {
            idx.change_edge_label(g, a, b, Label(l), Label((l + 1) % labels));
        }
        _ => idx.delete_vertex(g, a),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lazy_maintenance_never_merges_classes(
        seed in 0u64..1_000,
        ops in prop::collection::vec(op_strategy(40, 3), 1..30),
    ) {
        let cfg = generate::RandomGraphConfig::uniform(40, 120, 3, seed);
        let mut g = generate::random_graph(&cfg);
        let mut idx = CpqxIndex::build(&g, 2);
        let baseline = idx.class_slots();
        prop_assert_eq!(idx.fragmentation().baseline_classes, baseline);
        prop_assert!((idx.fragmentation_ratio() - 1.0).abs() < 1e-12);
        for op in ops {
            let slots_before = idx.class_slots();
            let members_before: Vec<Vec<Pair>> =
                (0..slots_before).map(|c| idx.class_pairs(c as u32).to_vec()).collect();
            apply_op(&mut g, &mut idx, op, 3);
            // Slots are monotone: classes are never merged or freed.
            prop_assert!(idx.class_slots() >= slots_before, "slots shrank under {op:?}");
            // Pre-existing classes only lose pairs; regrouped pairs land
            // in fresh classes exclusively.
            for (c, before) in members_before.iter().enumerate() {
                for p in idx.class_pairs(c as u32) {
                    prop_assert!(
                        before.binary_search(p).is_ok(),
                        "class {c} gained pair {p:?} under {op:?}"
                    );
                }
            }
        }
        // Class count is monotone between rebuilds and the report is
        // internally consistent.
        let frag = idx.fragmentation();
        prop_assert!(frag.class_slots >= baseline);
        prop_assert!(frag.ratio() >= 1.0);
        prop_assert_eq!(frag.class_slots - frag.live_classes, frag.tombstones());
        prop_assert_eq!(
            frag.class_slots,
            baseline + frag.fresh_classes as usize,
            "every slot beyond the baseline must be accounted as a fresh class"
        );
    }

    #[test]
    fn rebuild_restores_the_minimal_partition(
        seed in 0u64..1_000,
        ops in prop::collection::vec(op_strategy(30, 3), 1..25),
    ) {
        let cfg = generate::RandomGraphConfig::uniform(30, 90, 3, seed);
        let mut g = generate::random_graph(&cfg);
        let mut idx = CpqxIndex::build(&g, 2);
        for op in ops {
            apply_op(&mut g, &mut idx, op, 3);
        }
        idx.rebuild(&g);
        let fresh = CpqxIndex::build(&g, 2);
        prop_assert_eq!(idx.class_slots(), fresh.class_slots());
        prop_assert_eq!(idx.live_class_count(), fresh.live_class_count());
        prop_assert_eq!(idx.pair_count(), fresh.pair_count());
        let frag = idx.fragmentation();
        prop_assert_eq!(frag.baseline_classes, idx.class_slots());
        prop_assert_eq!(frag.fresh_classes, 0);
        prop_assert_eq!(frag.refreshed_pairs, 0);
        prop_assert_eq!(frag.tombstones(), 0, "fresh builds have no tombstones");
        prop_assert!((frag.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interest_churn_never_merges_classes(
        seed in 0u64..500,
        picks in prop::collection::vec((0u16..3, 0u16..3, prop::bool::ANY, prop::bool::ANY), 1..12),
    ) {
        let cfg = generate::RandomGraphConfig::uniform(25, 80, 3, seed);
        let g = generate::random_graph(&cfg);
        let seed_interest = LabelSeq::from_slice(&[Label(0).fwd(), Label(1).fwd()]);
        let mut idx = CpqxIndex::build_interest_aware(&g, 2, [seed_interest]);
        for (l1, l2, inv, register) in picks {
            let a = if inv { Label(l1).inv() } else { Label(l1).fwd() };
            let seq = LabelSeq::from_slice(&[a, Label(l2).fwd()]);
            let slots_before = idx.class_slots();
            if register {
                idx.insert_interest(&g, seq);
            } else {
                idx.delete_interest(&seq);
            }
            prop_assert!(idx.class_slots() >= slots_before, "interest churn merged classes");
        }
        prop_assert!(idx.fragmentation().ratio() >= 1.0);
    }
}

/// Regression (empty-baseline misfire): an index built from a graph with
/// **no edges** has `baseline_classes == 0`. The ratio used to read as
/// `class_slots / max(1) = class_slots`, so the very first lazy insert on
/// an empty-seeded index looked instantly, maximally fragmented and could
/// trip a serving layer's auto-rebuild threshold into rebuild thrash. A
/// zero baseline must read as fresh (1.0) and re-baseline on first
/// growth.
#[test]
fn empty_baseline_reads_fresh_and_rebaselines() {
    let mut b = cpqx_graph::GraphBuilder::new();
    b.ensure_vertices(10);
    b.ensure_labels(2);
    let mut g = b.build();
    let mut idx = CpqxIndex::build(&g, 2);
    assert_eq!(idx.class_slots(), 0);
    assert_eq!(idx.baseline_class_count(), 0);
    assert!((idx.fragmentation_ratio() - 1.0).abs() < 1e-12, "empty build reads fresh");
    assert!((idx.fragmentation().ratio() - 1.0).abs() < 1e-12);

    // First growth: classes appear, and the baseline snaps to them
    // instead of staying 0 — the ratio stays 1.0, not `class_slots`.
    assert!(idx.insert_edge(&mut g, 0, 1, Label(0)));
    assert!(idx.class_slots() > 0);
    assert_eq!(idx.baseline_class_count(), idx.class_slots(), "re-baselined on first growth");
    assert!((idx.fragmentation_ratio() - 1.0).abs() < 1e-12);

    // Subsequent churn is measured against the new baseline as usual.
    assert!(idx.insert_edge(&mut g, 1, 2, Label(1)));
    assert!(idx.fragmentation_ratio() >= 1.0);
    assert!(idx.fragmentation_ratio() < idx.class_slots() as f64, "ratio must not equal slots");

    // Queries stay correct throughout.
    let pairs = idx.evaluate(&g, &cpqx_query::parse_cpq("l0 . l1", &g).unwrap());
    assert_eq!(pairs, vec![Pair::new(0, 2)]);
}
