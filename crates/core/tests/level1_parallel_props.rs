//! Property tests for the parallel level-1 pass: at every thread count,
//! `RefinementBase::with_threads` must produce `pair_blocks`/`block_seqs`
//! **equal** to the sequential `RefinementBase::new` — structural
//! identity, not just query equivalence — across random graphs of both
//! generator topologies, plus the degenerate shapes the balancer treats
//! specially (empty, edgeless, single-vertex self-loop graphs).

use cpqx_core::RefinementBase;
use cpqx_graph::generate::{random_graph, RandomGraphConfig};
use cpqx_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

fn assert_structurally_equal(g: &Graph, ctx: &str) {
    let seq = RefinementBase::new(g);
    for &threads in &THREAD_COUNTS {
        let (par, parallel_time) = RefinementBase::with_threads_timed(g, threads);
        assert_eq!(
            seq.level1_pair_blocks(),
            par.level1_pair_blocks(),
            "pair_blocks diverge at {threads} threads ({ctx})"
        );
        assert_eq!(
            seq.level1_block_seqs(),
            par.level1_block_seqs(),
            "block_seqs diverge at {threads} threads ({ctx})"
        );
        assert_eq!(seq.vertex_count(), par.vertex_count());
        assert_eq!(seq.level1_pair_count(), par.level1_pair_count());
        if threads == 1 {
            assert_eq!(
                parallel_time,
                std::time::Duration::ZERO,
                "single-threaded builds must take the sequential path"
            );
        }
        // The downstream shard refinement sees identical state: a full
        // partition over the parallel base equals one over the sequential
        // base, class ids included (both walk the same signatures).
        let n = g.vertex_count();
        let ps = seq.partition_range(2, 0..n.max(1));
        let pp = par.partition_range(2, 0..n.max(1));
        assert_eq!(ps.pair_classes, pp.pair_classes, "{threads} threads ({ctx})");
        assert_eq!(ps.class_loop, pp.class_loop);
        assert_eq!(ps.class_seqs, pp.class_seqs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn social_graphs(seed in 0u64..100_000, vertices in 2u32..80, edge_factor in 1u32..6) {
        let edges = vertices * edge_factor;
        let g = random_graph(&RandomGraphConfig::social(vertices, edges as usize, 3, seed));
        assert_structurally_equal(&g, &format!("social seed={seed} v={vertices} e={edges}"));
    }

    #[test]
    fn uniform_graphs(seed in 0u64..100_000, labels in 1u16..5) {
        let g = random_graph(&RandomGraphConfig::uniform(60, 240, labels, seed));
        assert_structurally_equal(&g, &format!("uniform seed={seed} labels={labels}"));
    }
}

#[test]
fn degenerate_graphs() {
    assert_structurally_equal(&GraphBuilder::new().build(), "empty");

    let mut b = GraphBuilder::new();
    b.ensure_vertices(9);
    b.ensure_labels(2);
    assert_structurally_equal(&b.build(), "edgeless");

    let mut b = GraphBuilder::new();
    b.add_edge_named("a", "a", "f");
    assert_structurally_equal(&b.build(), "one self-loop");

    // More threads than vertices: the balancer caps the range count.
    let mut b = GraphBuilder::new();
    b.add_edge_named("a", "b", "f");
    b.add_edge_named("b", "a", "g");
    assert_structurally_equal(&b.build(), "two vertices");
}

#[test]
fn example_graph_all_ks_build_identically() {
    use cpqx_core::cpq_path_partition;
    let g = cpqx_graph::generate::gex();
    assert_structurally_equal(&g, "gex");
    // End to end: a partition assembled over the parallel base answers
    // exactly like the sequential Algorithm-1 pipeline.
    for k in 1..=3 {
        let seq = cpq_path_partition(&g, k);
        let par = RefinementBase::with_threads(&g, 8).partition_range(k, 0..g.vertex_count());
        assert_eq!(seq.pair_count(), par.pair_count(), "k={k}");
        assert_eq!(
            seq.pair_classes.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            par.pair_classes.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            "k={k}"
        );
    }
}
