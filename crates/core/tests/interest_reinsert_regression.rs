//! Regression: deleting an interest sequence and re-inserting it must
//! restore the full posting list. The lazy deletion keeps classes (and
//! their stale sequence metadata); on re-insertion, pairs whose class
//! already carries the sequence are "unchanged" — but their classes still
//! have to reappear under the re-added `Il2c` key, or single-lookup
//! queries silently lose answers.

use cpqx_core::CpqxIndex;
use cpqx_graph::{generate, LabelSeq};
use cpqx_query::eval::eval_reference;
use cpqx_query::Cpq;

#[test]
fn delete_then_reinsert_restores_lookup() {
    let g = generate::gex();
    let f = g.label_named("f").unwrap();
    let seq = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
    let mut idx = CpqxIndex::build_interest_aware(&g, 2, [seq]);
    let q = Cpq::ext(seq.get(0)).join(Cpq::ext(seq.get(1)));
    let expected = eval_reference(&g, &q);
    assert_eq!(idx.evaluate(&g, &q), expected, "fresh index");

    // Roundtrip the interest.
    assert!(idx.delete_interest(&seq));
    assert_eq!(idx.evaluate(&g, &q), expected, "after deletion (split lookups)");
    assert!(idx.insert_interest(&g, seq));
    assert!(idx.is_indexed(&seq));

    // The single-lookup path must see every pair again.
    let mut via_lookup = Vec::new();
    for &c in idx.lookup(&seq) {
        via_lookup.extend_from_slice(idx.class_pairs(c));
    }
    via_lookup.sort_unstable();
    assert_eq!(via_lookup, expected, "posting list incomplete after re-insertion");
    assert_eq!(idx.evaluate(&g, &q), expected, "query path after re-insertion");
}

#[test]
fn repeated_roundtrips_are_stable() {
    let cfg = generate::RandomGraphConfig::social(60, 260, 3, 4);
    let g = generate::random_graph(&cfg);
    let seqs = [
        LabelSeq::from_slice(&[cpqx_graph::ExtLabel(0), cpqx_graph::ExtLabel(1)]),
        LabelSeq::from_slice(&[cpqx_graph::ExtLabel(2), cpqx_graph::ExtLabel(0)]),
    ];
    let mut idx = CpqxIndex::build_interest_aware(&g, 2, seqs);
    let queries: Vec<Cpq> =
        seqs.iter().map(|s| Cpq::ext(s.get(0)).join(Cpq::ext(s.get(1)))).collect();
    let expected: Vec<_> = queries.iter().map(|q| eval_reference(&g, q)).collect();
    for round in 0..5 {
        for s in &seqs {
            idx.delete_interest(s);
            idx.insert_interest(&g, *s);
        }
        for (q, exp) in queries.iter().zip(&expected) {
            assert_eq!(&idx.evaluate(&g, q), exp, "round {round}");
        }
    }
}
