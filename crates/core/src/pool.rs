//! Minimal scoped-thread work-sharing helpers.
//!
//! The build environment is offline, so instead of `rayon` the workspace
//! uses `std::thread::scope` with a shared atomic work cursor — enough for
//! the coarse-grained parallelism of index builds and batch evaluation,
//! with no unsafe code and no external dependencies. Items are claimed
//! dynamically (not pre-chunked), so skewed per-item costs still balance.
//!
//! The module lives in `cpqx-core` (historically `cpqx-engine::pool`, which
//! still re-exports it) so the partition builders themselves can
//! parallelize: the level-1 pass of Algorithm 1 and the interest-aware
//! shard builds both run their per-range work through [`parallel_map`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item, running up to `threads` workers, and returns
/// the outputs in input order. Falls back to a plain sequential map when
/// one worker suffices. Panics in workers propagate.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Claim items through an atomic cursor; write results into
    // pre-allocated per-item slots so output order matches input order.
    let slots: Vec<std::sync::Mutex<Option<U>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let work: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().unwrap().take().expect("item claimed twice");
                let out = f(item);
                *slots[i].lock().unwrap() = Some(out);
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });

    slots.into_iter().map(|s| s.into_inner().unwrap().expect("missing result slot")).collect()
}

/// Runs `f(0..threads)` concurrently, one invocation per worker index, and
/// returns the outputs in worker order. Used for long-lived reader/writer
/// roles (e.g. batch evaluation workers that pull from a shared cursor).
pub fn spawn_workers<U, F>(threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = threads.max(1);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || f(w))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallbacks() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        assert_eq!(parallel_map(Vec::<i32>::new(), 8, |x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], 8, |x| x), vec![7]);
    }

    #[test]
    fn skewed_work_balances() {
        // One expensive item must not serialize the rest behind it.
        let out = parallel_map((0..32).collect::<Vec<_>>(), 8, |x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn workers_observe_indices() {
        let mut idx = spawn_workers(4, |w| w);
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
