//! Interest-aware path-equivalence — the iaCPQx partition (Sec. V).
//!
//! Given a set of interest label sequences `Lq ⊆ L≤k` (always containing
//! every length-1 sequence, per the paper), two pairs are equivalent iff
//! they have the same cyclicity and the same `L≤k(v,u) ∩ Lq` (Def. 5.1).
//! This is strictly coarser than k-path-bisimulation (`≈k` refines `≈i`),
//! giving a smaller, faster-to-build index that still evaluates arbitrary
//! CPQs: the planner splits non-interest sequences into indexed pieces.
//!
//! Construction decomposes by **source range** for parallel builds:
//! [`interest_partition_range`] computes the partition restricted to pairs
//! whose source lies in a contiguous vertex range, and shard partitions
//! over a tiling of ranges compose through
//! [`crate::bisim::merge_partitions`] into exactly the sequential
//! partition (classes are keyed by the `(cyclicity, L≤k ∩ Lq)` invariant
//! on both paths). The engine drives this from
//! `cpqx_engine::build_interest_sharded`.

use crate::bisim::{ClassId, Partition};
use cpqx_graph::{Graph, LabelSeq, Pair};
use cpqx_query::ops;
use std::collections::BTreeSet;

/// Normalizes a user-supplied interest set for an index with parameter `k`:
/// sequences longer than `k` are split into prefix chunks of length `k`
/// plus the remainder (the paper's rule for workload-derived interests),
/// duplicates collapse, empty sequences are dropped. Length-1 sequences
/// need not be listed — construction always indexes them.
pub fn normalize_interests(
    seqs: impl IntoIterator<Item = LabelSeq>,
    k: usize,
) -> BTreeSet<LabelSeq> {
    let mut out = BTreeSet::new();
    for seq in seqs {
        let mut rest = seq;
        while rest.len() > k {
            out.insert(rest.prefix(k));
            rest = rest.suffix(k);
        }
        if !rest.is_empty() {
            out.insert(rest);
        }
    }
    out
}

/// Evaluates the pair relation `⟦seq⟧` by repeated adjacency expansion.
pub fn seq_pairs(g: &Graph, seq: &LabelSeq) -> Vec<Pair> {
    seq_pairs_in(g, seq, 0..g.vertex_count())
}

/// Evaluates `⟦seq⟧` restricted to pairs whose **source** vertex lies in
/// `src_range`. Adjacency expansion only ever rewrites the target of a
/// pair, so seeding the expansion with the first label's source-restricted
/// relation restricts the whole result — the decomposition the sharded
/// interest-aware build rides on.
pub fn seq_pairs_in(g: &Graph, seq: &LabelSeq, src_range: std::ops::Range<u32>) -> Vec<Pair> {
    assert!(!seq.is_empty());
    let mut pairs = g.edge_pairs(seq.get(0)).restrict_src(src_range.start, src_range.end).to_vec();
    for i in 1..seq.len() {
        if pairs.is_empty() {
            break;
        }
        pairs = ops::expand_adjacency(g, &pairs, seq.get(i));
    }
    pairs
}

/// The full indexed sequence list of an interest-aware index over `g`:
/// every length-1 sequence with a non-empty relation, then the (already
/// normalized) interests of length ≥ 2 — sorted and deduplicated. All
/// shards of a sharded build share this list, and the engine weighs its
/// first labels to balance shard ranges.
pub fn indexed_interest_seqs(g: &Graph, k: usize, interests: &BTreeSet<LabelSeq>) -> Vec<LabelSeq> {
    let mut seqs: Vec<LabelSeq> = g
        .ext_labels()
        .map(LabelSeq::single)
        .filter(|s| !g.edge_pairs(s.get(0)).is_empty())
        .collect();
    for s in interests {
        assert!(s.len() <= k, "interest longer than k — call normalize_interests first");
        if s.len() > 1 {
            seqs.push(*s);
        }
    }
    seqs.sort_unstable();
    seqs.dedup();
    seqs
}

/// Computes the interest-aware partition: pairs with a non-empty
/// `L≤k ∩ Lq` grouped by `(is-loop, that intersection)`.
///
/// `interests` must already be normalized (all lengths in `1..=k`); all
/// length-1 sequences over the graph's extended alphabet are added
/// implicitly.
pub fn interest_partition(g: &Graph, k: usize, interests: &BTreeSet<LabelSeq>) -> Partition {
    interest_partition_range(g, k, interests, 0..g.vertex_count())
}

/// The restriction of [`interest_partition`] to pairs whose source vertex
/// lies in `src_range` — the per-shard unit of the parallel interest-aware
/// build.
///
/// Every matched pair `(v, u)` belongs to exactly the shard owning `v`
/// (sequence relations partition by source, see [`seq_pairs_in`]), and a
/// pair's class data — cyclicity plus its `L≤k ∩ Lq` intersection — is
/// computed entirely within its shard, so shard partitions over a tiling
/// set of ascending ranges compose through
/// [`crate::bisim::merge_partitions`]: classes unify by the `(cyclicity,
/// sequence set)` invariant itself, which is the exact key this function
/// groups by. The merged partition therefore has *identical* class
/// contents and class count to the sequential [`interest_partition`]
/// (only class ids may be ordered differently).
pub fn interest_partition_range(
    g: &Graph,
    k: usize,
    interests: &BTreeSet<LabelSeq>,
    src_range: std::ops::Range<u32>,
) -> Partition {
    interest_partition_range_with_seqs(g, k, &indexed_interest_seqs(g, k, interests), src_range)
}

/// [`interest_partition_range`] over a **precomputed** indexed sequence
/// list, as returned by [`indexed_interest_seqs`] — the sharded builder
/// derives the list once and reuses it across all shards (it must be the
/// same list for every shard of one build, or classes won't merge).
pub fn interest_partition_range_with_seqs(
    g: &Graph,
    k: usize,
    seqs: &[LabelSeq],
    src_range: std::ops::Range<u32>,
) -> Partition {
    assert!((1..=cpqx_graph::MAX_SEQ_LEN).contains(&k));
    debug_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs must be sorted and deduplicated");

    // (pair, seq-id) for every in-range pair matched by an indexed
    // sequence.
    let mut hits: Vec<(Pair, u32)> = Vec::new();
    for (sid, seq) in seqs.iter().enumerate() {
        for p in seq_pairs_in(g, seq, src_range.clone()) {
            hits.push((p, sid as u32));
        }
    }
    hits.sort_unstable();
    hits.dedup();

    // Group by pair, then group pairs by (is-loop, seq-id set).
    let mut pairs: Vec<(Pair, std::ops::Range<usize>)> = Vec::new();
    let mut i = 0;
    while i < hits.len() {
        let p = hits[i].0;
        let j = i + hits[i..].partition_point(|&(q, _)| q == p);
        pairs.push((p, i..j));
        i = j;
    }
    let ids_of = |idx: usize| hits[pairs[idx].1.clone()].iter().map(|&(_, s)| s);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        pairs[a].0.is_loop().cmp(&pairs[b].0.is_loop()).then_with(|| ids_of(a).cmp(ids_of(b)))
    });

    let mut class_of: Vec<ClassId> = vec![0; pairs.len()];
    let mut class_loop: Vec<bool> = Vec::new();
    let mut class_seqs: Vec<Vec<LabelSeq>> = Vec::new();
    let mut prev: Option<usize> = None;
    for &idx in &order {
        let same = prev.is_some_and(|p| {
            pairs[p].0.is_loop() == pairs[idx].0.is_loop() && ids_of(p).eq(ids_of(idx))
        });
        if !same {
            class_loop.push(pairs[idx].0.is_loop());
            class_seqs.push(ids_of(idx).map(|s| seqs[s as usize]).collect());
        }
        class_of[idx] = (class_loop.len() - 1) as ClassId;
        prev = Some(idx);
    }

    let pair_classes: Vec<(Pair, ClassId)> =
        pairs.iter().enumerate().map(|(i, &(p, _))| (p, class_of[i])).collect();
    Partition { pair_classes, class_loop, class_seqs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_graph::{ExtLabel, Label};

    fn l(i: u16) -> ExtLabel {
        Label(i).fwd()
    }

    #[test]
    fn normalize_splits_long_sequences() {
        let long = LabelSeq::from_slice(&[l(0), l(1), l(2), l(3), l(4)]);
        let set = normalize_interests([long], 2);
        // 5 = 2 + 2 + 1.
        assert!(set.contains(&LabelSeq::from_slice(&[l(0), l(1)])));
        assert!(set.contains(&LabelSeq::from_slice(&[l(2), l(3)])));
        assert!(set.contains(&LabelSeq::single(l(4))));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn seq_pairs_matches_reference() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        let seq = LabelSeq::from_slice(&[f.fwd(), v.fwd()]);
        let q = cpqx_query::Cpq::label(f).join(cpqx_query::Cpq::label(v));
        assert_eq!(seq_pairs(&g, &seq), cpqx_query::eval::eval_reference(&g, &q));
    }

    #[test]
    fn partition_is_disjoint_and_total_over_matches() {
        let g = generate::gex();
        let interests = normalize_interests(
            [LabelSeq::from_slice(&[l(0), l(0)])], // ff
            2,
        );
        let p = interest_partition(&g, 2, &interests);
        // Every edge-connected pair appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for &(pair, _) in &p.pair_classes {
            assert!(seen.insert(pair), "pair {pair:?} appears twice");
        }
        for el in g.ext_labels() {
            for pr in g.edge_pairs(el) {
                assert!(seen.contains(&pr), "edge pair {pr:?} missing");
            }
        }
    }

    #[test]
    fn range_partitions_merge_to_sequential() {
        use crate::bisim::merge_partitions;
        let g = generate::random_graph(&generate::RandomGraphConfig::social(40, 170, 3, 9));
        let interests = normalize_interests(
            [LabelSeq::from_slice(&[l(0), l(1)]), LabelSeq::from_slice(&[l(2), l(2)])],
            2,
        );
        let seq = interest_partition(&g, 2, &interests);
        for shards in [1usize, 2, 3, 8, 40] {
            let ranges = g.balanced_src_ranges(shards);
            let parts: Vec<_> = ranges
                .into_iter()
                .map(|r| interest_partition_range(&g, 2, &interests, r))
                .collect();
            let merged = merge_partitions(parts);
            // Same classes, merely renumbered: identical pair set, and per
            // pair identical (cyclicity, sequence-set) class data; class
            // grouping by that exact key forces identical counts too.
            assert_eq!(merged.pair_count(), seq.pair_count(), "{shards} shards");
            assert_eq!(merged.class_count(), seq.class_count(), "{shards} shards");
            let lookup: std::collections::HashMap<Pair, u32> =
                seq.pair_classes.iter().copied().collect();
            for &(p, c) in &merged.pair_classes {
                let sc = lookup[&p];
                assert_eq!(merged.class_seqs[c as usize], seq.class_seqs[sc as usize], "{p:?}");
                assert_eq!(merged.class_loop[c as usize], seq.class_loop[sc as usize], "{p:?}");
            }
        }
    }

    #[test]
    fn seq_pairs_in_restricts_by_source() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let seq = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
        let all = seq_pairs(&g, &seq);
        let n = g.vertex_count();
        for lo in 0..=n {
            for hi in lo..=n {
                let expected: Vec<Pair> =
                    all.iter().copied().filter(|p| (lo..hi).contains(&p.src())).collect();
                assert_eq!(seq_pairs_in(&g, &seq, lo..hi), expected, "[{lo},{hi})");
            }
        }
    }

    #[test]
    fn class_members_share_seq_sets() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(60, 240, 3, 5));
        let interests = normalize_interests(
            [LabelSeq::from_slice(&[l(0), l(1)]), LabelSeq::from_slice(&[l(1), l(2)])],
            2,
        );
        let p = interest_partition(&g, 2, &interests);
        // Recompute each pair's interest intersection from scratch and check
        // it matches its class label set.
        for &(pair, c) in &p.pair_classes {
            let mut expected: Vec<LabelSeq> = Vec::new();
            for el in g.ext_labels() {
                let s = LabelSeq::single(el);
                if seq_pairs(&g, &s).binary_search(&pair).is_ok() {
                    expected.push(s);
                }
            }
            for s in &interests {
                if seq_pairs(&g, s).binary_search(&pair).is_ok() {
                    expected.push(*s);
                }
            }
            expected.sort_unstable();
            assert_eq!(p.class_seqs[c as usize], expected, "pair {pair:?}");
            assert_eq!(p.class_loop[c as usize], pair.is_loop());
        }
    }
}
