//! Computing the CPQk-equivalence classes — the paper's Algorithm 1.
//!
//! The partition is built bottom-up by block refinement:
//!
//! * **Level 1**: s-t pairs connected by at least one edge are grouped by
//!   `(is-loop, sorted set of extended edge labels v→u)`; the block id
//!   `b₁(v,u)` identifies the group. Pairs without a length-1 path have
//!   `b₁ = NULL` (the paper's skipping rule — the `{id}` and `{}` blocks of
//!   Fig. 3 never get identifiers).
//! * **Level i**: every pair `(v,m)` with an *exact* length-(i−1) path is
//!   joined with every edge `(m,u)`; the signature of `(v,u)` at level i is
//!   the sorted set `Sᵢ(v,u) = {(b_{i-1}(v,m), b₁(m,u))}` over all such `m`,
//!   together with the loop flag. `bᵢ = NULL` iff the pair has no exact
//!   length-i path.
//! * **Classes**: pairs are grouped by `(is-loop, ⟨b₁,…,b_k⟩)` — Algorithm
//!   2's hash of the block-id sequence.
//!
//! **Why this is sound for the index** (Sec. IV-C's discussion): by
//! induction on i, the block id `bᵢ` determines the set of exact-length-i
//! label sequences of its pairs — level 1 directly, level i because
//! `L₌ᵢ(v,u) = ⋃_m L₌ᵢ₋₁(v,m)·L₌₁(m,u)` and the members of `Sᵢ` determine
//! the operand sets. Hence all pairs of a class share `L≤k` and cyclicity,
//! which is exactly the invariant query processing relies on (Prop. 4.1 and
//! the IDENTITY check). The same induction lets us compute each block's
//! exact-length-i sequence set *per block id* instead of per pair, which is
//! how `Il2c` is materialized without ever enumerating paths.

use cpqx_graph::{ExtLabel, Graph, LabelSeq, Pair};
use std::time::{Duration, Instant};

/// Identifier of a CPQk-equivalence class.
pub type ClassId = u32;

/// The computed partition of `P≤k` (pairs connected by a non-trivial path
/// of length ≤ k; pure-identity pairs with no path are not materialized,
/// matching the index definition — `id` is answered by the executor).
pub struct Partition {
    /// `(pair, class)` sorted by pair.
    pub pair_classes: Vec<(Pair, ClassId)>,
    /// Per class: whether its pairs are cyclic (`v = u`).
    pub class_loop: Vec<bool>,
    /// Per class: the sorted set `L≤k(v,u)` shared by all member pairs.
    pub class_seqs: Vec<Vec<LabelSeq>>,
}

impl Partition {
    /// Number of classes `|C|`.
    pub fn class_count(&self) -> usize {
        self.class_loop.len()
    }

    /// Number of indexed pairs `|P≤k|` (non-trivially connected).
    pub fn pair_count(&self) -> usize {
        self.pair_classes.len()
    }
}

/// Per-level state: pairs holding an exact-length-i path, their block ids,
/// and each block's exact-length-i sequence set.
struct Level {
    /// `(pair, block)` sorted by pair.
    pair_blocks: Vec<(Pair, u32)>,
    /// Per block: sorted exact-length-i label sequences.
    block_seqs: Vec<Vec<LabelSeq>>,
}

/// Computes the CPQk-equivalence classes of `g` (Algorithm 1 + the class
/// assignment of Algorithm 2).
pub fn cpq_path_partition(g: &Graph, k: usize) -> Partition {
    assert!(k >= 1, "k must be at least 1");
    assert!(k <= cpqx_graph::MAX_SEQ_LEN, "k exceeds MAX_SEQ_LEN");

    let base = RefinementBase::new(g);
    let mut levels: Vec<Level> = Vec::with_capacity(k);
    levels.push(base.level1);
    for _ in 2..=k {
        let next = {
            let prev = levels.last().unwrap();
            refine_level(&prev.pair_blocks, &prev.block_seqs, &levels[0].block_seqs, &base.adj1)
        };
        levels.push(next);
    }

    let views: Vec<LevelView<'_>> = levels
        .iter()
        .map(|l| LevelView { pair_blocks: &l.pair_blocks, block_seqs: &l.block_seqs })
        .collect();
    assemble_classes(&views, k)
}

/// A borrowed per-level view — either a whole [`Level`] or a shard's
/// source-contiguous slice of one.
#[derive(Clone, Copy)]
struct LevelView<'a> {
    pair_blocks: &'a [(Pair, u32)],
    block_seqs: &'a [Vec<LabelSeq>],
}

/// Shared read-only state for (sharded) refinement: the *global* level-1
/// partition and its adjacency form.
///
/// Level 1 assigns globally consistent block ids `b₁` to every
/// edge-connected pair; every later refinement level only ever *reads* this
/// state, which is what makes source-sharded refinement embarrassingly
/// parallel: all pairs `(v, ·)` of a source vertex `v` are produced by
/// level-sequences that start at `v`, so a shard owning a source range owns
/// its pairs outright (see [`RefinementBase::partition_range`]).
///
/// The level-1 pass itself is parallel too (see
/// [`RefinementBase::with_threads`]): per-range extraction, sorting and
/// signature collection run on a scoped pool, and block ids are assigned by
/// each distinct signature's rank in the globally sorted signature set —
/// which is exactly the id the sequential pass hands out, so the parallel
/// result is *structurally identical* (same `pair_blocks`, same
/// `block_seqs`), not merely query-equivalent.
pub struct RefinementBase {
    level1: Level,
    /// For each vertex `m`, the `(target, b₁(m,u))` list of its outgoing
    /// extended edges.
    adj1: Vec<Vec<(u32, u32)>>,
    vertex_count: u32,
}

impl RefinementBase {
    /// Builds the global level-1 state of `g` sequentially (equivalent to
    /// [`RefinementBase::with_threads`] at one thread).
    pub fn new(g: &Graph) -> Self {
        Self::with_threads(g, 1)
    }

    /// Builds the global level-1 state of `g`, running the per-range
    /// extraction + sort + block-id assignment on up to `threads` workers.
    /// The result is structurally identical to [`RefinementBase::new`] at
    /// any thread count (asserted by the level-1 property tests).
    pub fn with_threads(g: &Graph, threads: usize) -> Self {
        Self::with_threads_timed(g, threads).0
    }

    /// [`RefinementBase::with_threads`], also returning the wall-clock
    /// spent inside the parallel sections of the level-1 pass (zero when
    /// the build degenerates to the sequential pipeline).
    pub fn with_threads_timed(g: &Graph, threads: usize) -> (Self, Duration) {
        let (level1, parallel) = if threads <= 1 {
            (build_level1(g), Duration::ZERO)
        } else {
            build_level1_parallel(g, threads)
        };
        let mut adj1: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.vertex_count() as usize];
        for &(p, b) in &level1.pair_blocks {
            adj1[p.src() as usize].push((p.dst(), b));
        }
        (RefinementBase { level1, adj1, vertex_count: g.vertex_count() }, parallel)
    }

    /// Number of vertices of the underlying graph.
    pub fn vertex_count(&self) -> u32 {
        self.vertex_count
    }

    /// The level-1 `(pair, b₁)` assignment, sorted by pair — exposed so
    /// equivalence harnesses can assert the parallel level-1 pass is
    /// structurally identical to the sequential one.
    pub fn level1_pair_blocks(&self) -> &[(Pair, u32)] {
        &self.level1.pair_blocks
    }

    /// Per level-1 block: its sorted exact-length-1 label-sequence set
    /// (companion accessor to [`RefinementBase::level1_pair_blocks`]).
    pub fn level1_block_seqs(&self) -> &[Vec<LabelSeq>] {
        &self.level1.block_seqs
    }

    /// Number of level-1 (edge-connected) pairs — the work measure used to
    /// balance shard ranges.
    pub fn level1_pair_count(&self) -> usize {
        self.level1.pair_blocks.len()
    }

    /// Splits the vertex ids into at most `shards` contiguous source
    /// ranges with approximately equal numbers of level-1 pairs (a better
    /// proxy for refinement cost than raw degree). Ranges tile
    /// `0..vertex_count()` in ascending order.
    pub fn balanced_ranges(&self, shards: usize) -> Vec<std::ops::Range<u32>> {
        cpqx_graph::view::balanced_ranges_by_weight(self.vertex_count, shards, |v| {
            self.adj1[v as usize].len()
        })
    }

    /// Runs the per-shard part of Algorithm 1: refinement levels `2..=k`
    /// and class assembly restricted to pairs whose source vertex lies in
    /// `src_range`.
    ///
    /// The returned partition covers exactly the pairs of `P≤k` with source
    /// in the range; class ids are shard-local. Merging the shard
    /// partitions of a tiling set of ranges with [`merge_partitions`]
    /// yields a partition that is query-equivalent to
    /// [`cpq_path_partition`] (classes are grouped by the invariant
    /// `(cyclicity, L≤k)` itself rather than by block signature, which can
    /// only *coarsen* the sequential partition — soundly so, since query
    /// processing relies on exactly that invariant; see Prop. 4.1).
    pub fn partition_range(&self, k: usize, src_range: std::ops::Range<u32>) -> Partition {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= cpqx_graph::MAX_SEQ_LEN, "k exceeds MAX_SEQ_LEN");

        // The level-1 slice for this shard: pair_blocks is sorted by pair
        // (source-major), so the restriction is one contiguous subslice.
        let pb = &self.level1.pair_blocks;
        let start = pb.partition_point(|&(p, _)| p.src() < src_range.start);
        let end = start + pb[start..].partition_point(|&(p, _)| p.src() < src_range.end);
        let level1_slice = &pb[start..end];

        let mut local: Vec<Level> = Vec::with_capacity(k.saturating_sub(1));
        for i in 2..=k {
            let (prev_blocks, prev_seqs): (&[(Pair, u32)], &[Vec<LabelSeq>]) = if i == 2 {
                (level1_slice, &self.level1.block_seqs)
            } else {
                let prev = local.last().unwrap();
                (&prev.pair_blocks, &prev.block_seqs)
            };
            let next = refine_level(prev_blocks, prev_seqs, &self.level1.block_seqs, &self.adj1);
            local.push(next);
        }

        let mut views: Vec<LevelView<'_>> = Vec::with_capacity(k);
        views.push(LevelView { pair_blocks: level1_slice, block_seqs: &self.level1.block_seqs });
        for l in &local {
            views.push(LevelView { pair_blocks: &l.pair_blocks, block_seqs: &l.block_seqs });
        }
        assemble_classes(&views, k)
    }
}

/// Merges shard partitions over disjoint, ascending source ranges into one
/// partition, unifying classes across shards by the class invariant
/// `(cyclicity, L≤k)`.
///
/// Precondition (asserted in debug builds): the concatenation of the
/// shards' pair lists is strictly sorted — i.e. the shards came from a
/// tiling of ascending source ranges, as produced by
/// [`RefinementBase::balanced_ranges`].
pub fn merge_partitions(shards: Vec<Partition>) -> Partition {
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};

    let mut pair_classes: Vec<(Pair, ClassId)> =
        Vec::with_capacity(shards.iter().map(Partition::pair_count).sum());
    let mut class_loop: Vec<bool> = Vec::new();
    let mut class_seqs: Vec<Vec<LabelSeq>> = Vec::new();
    // Candidate global class ids per key hash. Keying by hash (with an
    // explicit equality check against the already-stored class data)
    // avoids materializing owned `(loop, seqs)` map keys: each shard's
    // sequence sets are *moved* into `class_seqs` on first occurrence and
    // simply dropped on duplicates — no clones at all.
    let mut by_hash: HashMap<u64, Vec<ClassId>> = HashMap::new();
    let key_hash = |lp: bool, seqs: &[LabelSeq]| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        lp.hash(&mut h);
        seqs.hash(&mut h);
        h.finish()
    };

    for shard in shards {
        let Partition { pair_classes: spairs, class_loop: sloop, class_seqs: sseqs } = shard;
        // Remap this shard's local class ids to global ids.
        let mut remap: Vec<ClassId> = Vec::with_capacity(sloop.len());
        for (&lp, seqs) in sloop.iter().zip(sseqs) {
            let candidates = by_hash.entry(key_hash(lp, &seqs)).or_default();
            let found = candidates
                .iter()
                .copied()
                .find(|&c| class_loop[c as usize] == lp && class_seqs[c as usize] == seqs);
            remap.push(found.unwrap_or_else(|| {
                let c = class_loop.len() as ClassId;
                class_loop.push(lp);
                class_seqs.push(seqs);
                candidates.push(c);
                c
            }));
        }
        for &(p, c) in &spairs {
            debug_assert!(
                pair_classes.last().is_none_or(|&(q, _)| q < p),
                "shards must tile ascending source ranges"
            );
            pair_classes.push((p, remap[c as usize]));
        }
    }
    Partition { pair_classes, class_loop, class_seqs }
}

/// A level-1 block signature: `(is-loop, sorted extended-label set)`.
/// Tuple `Ord` is the level-1 comparator (loop flag first, then
/// lexicographic labels), so a signature's rank in a sorted distinct
/// list is its block id.
type Level1Sig = (bool, Vec<u16>);

/// One source range's share of the level-1 pass: its sorted
/// `(pair, label)` entries, the grouped pairs (each referencing its
/// label slice in `entries`), and the range's *distinct* `(is-loop,
/// label set)` signatures, sorted. Only distinct signatures own their
/// label vectors; per-pair signatures stay slices into `entries`.
struct Level1Part {
    entries: Vec<(Pair, u16)>,
    pairs: Vec<(Pair, std::ops::Range<usize>)>,
    sigs: Vec<Level1Sig>,
}

/// Extracts one source range's level-1 state: per-label entry extraction,
/// sort, pair grouping, and local distinct-signature collection. The
/// per-worker unit of the parallel pass; the sequential pass is the
/// single-range instance of the same code, so the two cannot diverge.
fn level1_part(g: &Graph, r: std::ops::Range<u32>) -> Level1Part {
    let mut entries: Vec<(Pair, u16)> = Vec::new();
    for l in g.ext_labels() {
        for p in g.edge_pairs(l).restrict_src(r.start, r.end).iter() {
            entries.push((p, l.0));
        }
    }
    entries.sort_unstable();

    // Group by pair; represent each pair by its label-slice range.
    let mut pairs: Vec<(Pair, std::ops::Range<usize>)> = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let p = entries[i].0;
        let j = i + entries[i..].partition_point(|&(q, _)| q == p);
        pairs.push((p, i..j));
        i = j;
    }

    // Collect the distinct signatures in (is-loop, label slice) order.
    let labels_of = |idx: usize| entries[pairs[idx].1.clone()].iter().map(|&(_, l)| l);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        pairs[a].0.is_loop().cmp(&pairs[b].0.is_loop()).then_with(|| labels_of(a).cmp(labels_of(b)))
    });
    let mut sigs: Vec<Level1Sig> = Vec::new();
    for &idx in &order {
        let lp = pairs[idx].0.is_loop();
        let same = sigs
            .last()
            .is_some_and(|(plp, pls)| *plp == lp && pls.iter().copied().eq(labels_of(idx)));
        if !same {
            sigs.push((lp, labels_of(idx).collect()));
        }
    }
    Level1Part { entries, pairs, sigs }
}

/// Merges per-range distinct-signature sets into the globally sorted
/// signature list and its per-block sequence sets. `(bool, Vec<u16>)`
/// ordering is the level-1 comparator — loop flag first, then
/// lexicographic labels — so a signature's **rank** in the merged list is
/// its block id: the classic one-walk assignment bumps the id at every
/// new signature while walking pairs in exactly this order.
fn level1_sig_merge(parts: &[Level1Part]) -> (Vec<Level1Sig>, Vec<Vec<LabelSeq>>) {
    let mut sigs: Vec<Level1Sig> = parts.iter().flat_map(|p| p.sigs.iter().cloned()).collect();
    sigs.sort_unstable();
    sigs.dedup();
    let block_seqs: Vec<Vec<LabelSeq>> = sigs
        .iter()
        .map(|(_, ls)| ls.iter().map(|&l| LabelSeq::single(ExtLabel(l))).collect())
        .collect();
    (sigs, block_seqs)
}

/// Maps one range's pairs to their signatures' global ranks. The output
/// inherits the part's (ascending) pair order.
fn level1_map_part(part: Level1Part, sigs: &[Level1Sig]) -> Vec<(Pair, u32)> {
    let Level1Part { entries, pairs, .. } = part;
    pairs
        .into_iter()
        .map(|(p, range)| {
            let labels = entries[range].iter().map(|&(_, l)| l);
            let b = sigs
                .binary_search_by(|s| {
                    s.0.cmp(&p.is_loop()).then_with(|| s.1.iter().copied().cmp(labels.clone()))
                })
                .expect("every signature was registered in the merge");
            (p, b as u32)
        })
        .collect()
}

/// Level 1: group edge-connected pairs by `(is-loop, sorted label set)` —
/// the single-range instance of the shared range pipeline above.
fn build_level1(g: &Graph) -> Level {
    let part = level1_part(g, 0..g.vertex_count());
    let (sigs, block_seqs) = level1_sig_merge(std::slice::from_ref(&part));
    let pair_blocks = level1_map_part(part, &sigs);
    Level { pair_blocks, block_seqs }
}

/// Parallel level 1, structurally identical to [`build_level1`]: the same
/// per-range pipeline fanned over balanced source ranges. Pair groups
/// never straddle ranges (grouping is by pair; ranges partition sources),
/// the signature merge gives globally consistent ranks, and concatenating
/// per-range outputs in range order preserves global pair order (`Pair`
/// packs source-major) — so `pair_blocks` and `block_seqs` come out
/// byte-identical at any range count. Returns the level plus the
/// wall-clock spent in the two parallel sections.
fn build_level1_parallel(g: &Graph, threads: usize) -> (Level, Duration) {
    let ranges = g.balanced_src_ranges(threads);
    if ranges.len() <= 1 {
        return (build_level1(g), Duration::ZERO);
    }

    let t0 = Instant::now();
    let parts: Vec<Level1Part> = crate::pool::parallel_map(ranges, threads, |r| level1_part(g, r));
    let mut parallel = t0.elapsed();

    let (sigs, block_seqs) = level1_sig_merge(&parts);

    let t0 = Instant::now();
    let sigs = &sigs;
    let mapped: Vec<Vec<(Pair, u32)>> =
        crate::pool::parallel_map(parts, threads, |part| level1_map_part(part, sigs));
    parallel += t0.elapsed();

    let mut pair_blocks: Vec<(Pair, u32)> = Vec::with_capacity(mapped.iter().map(Vec::len).sum());
    for m in mapped {
        pair_blocks.extend(m);
    }
    (Level { pair_blocks, block_seqs }, parallel)
}

/// Level i from level i−1: join exact-(i−1) pairs with edges, group by
/// `(is-loop, sorted (b_{i-1}, b₁) set)`. `prev_blocks` may be a shard's
/// source-contiguous slice of the previous level; block ids in the output
/// index into the returned `block_seqs` only.
fn refine_level(
    prev_blocks: &[(Pair, u32)],
    prev_seqs: &[Vec<LabelSeq>],
    level1_block_seqs: &[Vec<LabelSeq>],
    adj1: &[Vec<(u32, u32)>],
) -> Level {
    // Emit (pair, combo) for every decomposition prefix·edge. Dense graphs
    // emit far more raw tuples than there are distinct ones, so the buffer
    // is deduplicated periodically to bound peak memory.
    const DEDUP_THRESHOLD: usize = 1 << 23;
    let mut emissions: Vec<(Pair, u64)> = Vec::new();
    let mut next_dedup = DEDUP_THRESHOLD;
    for &(vm, b_prev) in prev_blocks {
        let (v, m) = (vm.src(), vm.dst());
        for &(u, b1) in &adj1[m as usize] {
            emissions.push((Pair::new(v, u), ((b_prev as u64) << 32) | b1 as u64));
        }
        if emissions.len() >= next_dedup {
            emissions.sort_unstable();
            emissions.dedup();
            next_dedup = (emissions.len() * 2).max(DEDUP_THRESHOLD);
        }
    }
    emissions.sort_unstable();
    emissions.dedup();

    // Group by pair.
    let mut pairs: Vec<(Pair, std::ops::Range<usize>)> = Vec::new();
    let mut i = 0;
    while i < emissions.len() {
        let p = emissions[i].0;
        let j = i + emissions[i..].partition_point(|&(q, _)| q == p);
        pairs.push((p, i..j));
        i = j;
    }

    // Assign block ids by (is-loop, combo slice).
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        pairs[a].0.is_loop().cmp(&pairs[b].0.is_loop()).then_with(|| {
            emissions[pairs[a].1.clone()]
                .iter()
                .map(|&(_, c)| c)
                .cmp(emissions[pairs[b].1.clone()].iter().map(|&(_, c)| c))
        })
    });

    let mut pair_blocks: Vec<(Pair, u32)> = vec![(Pair(0), 0); pairs.len()];
    let mut block_combos: Vec<Vec<u64>> = Vec::new();
    let mut prev_idx: Option<usize> = None;
    for &idx in &order {
        let same = prev_idx.is_some_and(|p| {
            pairs[p].0.is_loop() == pairs[idx].0.is_loop()
                && emissions[pairs[p].1.clone()]
                    .iter()
                    .map(|&(_, c)| c)
                    .eq(emissions[pairs[idx].1.clone()].iter().map(|&(_, c)| c))
        });
        if !same {
            block_combos.push(emissions[pairs[idx].1.clone()].iter().map(|&(_, c)| c).collect());
        }
        pair_blocks[idx] = (pairs[idx].0, (block_combos.len() - 1) as u32);
        prev_idx = Some(idx);
    }

    // Each block's exact-length-i sequence set: union over its combos of
    // prev-block seqs × level-1 labels (memoized per block, not per pair —
    // see the module docs for why this equals the paper's per-pair loop).
    let block_seqs: Vec<Vec<LabelSeq>> = block_combos
        .iter()
        .map(|combos| {
            let mut seqs = Vec::new();
            for &c in combos {
                let b_prev = (c >> 32) as usize;
                let b1 = (c as u32) as usize;
                for w in &prev_seqs[b_prev] {
                    for s1 in &level1_block_seqs[b1] {
                        seqs.push(w.concat(s1));
                    }
                }
            }
            seqs.sort_unstable();
            seqs.dedup();
            seqs
        })
        .collect();

    Level { pair_blocks, block_seqs }
}

/// Final class assignment: group pairs by `(is-loop, ⟨b₁,…,b_k⟩)` and derive
/// each class's `L≤k` from the per-level block sequence sets.
fn assemble_classes(levels: &[LevelView<'_>], k: usize) -> Partition {
    // Gather (pair, level, block) across levels.
    let mut tuples: Vec<(Pair, u8, u32)> = Vec::new();
    for (i, level) in levels.iter().enumerate() {
        for &(p, b) in level.pair_blocks {
            tuples.push((p, i as u8, b));
        }
    }
    tuples.sort_unstable();

    const NULL: u32 = u32::MAX;
    // Per distinct pair: its block signature.
    let mut sigs: Vec<(Pair, Vec<u32>)> = Vec::new();
    let mut i = 0;
    while i < tuples.len() {
        let p = tuples[i].0;
        let mut sig = vec![NULL; k];
        while i < tuples.len() && tuples[i].0 == p {
            sig[tuples[i].1 as usize] = tuples[i].2;
            i += 1;
        }
        sigs.push((p, sig));
    }

    // Group by (is-loop, signature).
    let mut order: Vec<usize> = (0..sigs.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        sigs[a].0.is_loop().cmp(&sigs[b].0.is_loop()).then_with(|| sigs[a].1.cmp(&sigs[b].1))
    });

    let mut class_of: Vec<u32> = vec![0; sigs.len()];
    let mut class_loop: Vec<bool> = Vec::new();
    let mut class_seqs: Vec<Vec<LabelSeq>> = Vec::new();
    let mut prev: Option<usize> = None;
    for &idx in &order {
        let same = prev.is_some_and(|p| {
            sigs[p].0.is_loop() == sigs[idx].0.is_loop() && sigs[p].1 == sigs[idx].1
        });
        if !same {
            class_loop.push(sigs[idx].0.is_loop());
            let mut seqs = Vec::new();
            for (lvl, &b) in sigs[idx].1.iter().enumerate() {
                if b != NULL {
                    seqs.extend_from_slice(&levels[lvl].block_seqs[b as usize]);
                }
            }
            seqs.sort_unstable();
            seqs.dedup();
            class_seqs.push(seqs);
        }
        class_of[idx] = (class_loop.len() - 1) as u32;
        prev = Some(idx);
    }

    let pair_classes: Vec<(Pair, ClassId)> =
        sigs.iter().enumerate().map(|(i, &(p, _))| (p, class_of[i])).collect();
    Partition { pair_classes, class_loop, class_seqs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::label_seqs_between;
    use cpqx_graph::generate;

    /// The invariant everything rests on: classes disjointly cover all
    /// non-trivially connected pairs, and all members of a class share
    /// cyclicity and the full label-sequence set `L≤k`.
    fn check_invariants(g: &Graph, k: usize) -> Partition {
        let p = cpq_path_partition(g, k);
        // Disjoint cover.
        let mut seen = std::collections::HashSet::new();
        for &(pair, c) in &p.pair_classes {
            assert!(seen.insert(pair), "pair {pair:?} in two classes");
            assert!((c as usize) < p.class_count());
        }
        // Exactly the pairs with a non-trivial path of length ≤ k.
        for v in g.vertices() {
            for u in g.vertices() {
                let connected = !label_seqs_between(g, v, u, k).is_empty();
                assert_eq!(
                    seen.contains(&Pair::new(v, u)),
                    connected,
                    "membership mismatch for ({v},{u})"
                );
            }
        }
        // Class homogeneity + stored sequence sets match recomputation.
        for &(pair, c) in &p.pair_classes {
            let expected = label_seqs_between(g, pair.src(), pair.dst(), k);
            assert_eq!(
                p.class_seqs[c as usize], expected,
                "class {c} seqs wrong for pair {pair:?}"
            );
            assert_eq!(p.class_loop[c as usize], pair.is_loop());
        }
        p
    }

    #[test]
    fn invariants_on_gex_k2() {
        let g = generate::gex();
        let p = check_invariants(&g, 2);
        assert!(p.class_count() > 10, "Gex at k=2 has many classes");
        assert!(p.pair_count() >= p.class_count());
    }

    #[test]
    fn invariants_on_gex_k1_and_k3() {
        let g = generate::gex();
        check_invariants(&g, 1);
        check_invariants(&g, 3);
    }

    #[test]
    fn invariants_on_random_graphs() {
        for seed in 0..4 {
            let cfg = generate::RandomGraphConfig::social(40, 160, 3, seed);
            let g = generate::random_graph(&cfg);
            check_invariants(&g, 2);
        }
    }

    #[test]
    fn invariants_with_self_loops() {
        let mut b = cpqx_graph::GraphBuilder::new();
        b.add_edge_named("a", "a", "f");
        b.add_edge_named("a", "b", "f");
        b.add_edge_named("b", "b", "v");
        b.add_edge_named("b", "a", "v");
        let g = b.build();
        check_invariants(&g, 2);
        check_invariants(&g, 3);
    }

    #[test]
    fn cycle_symmetry_collapses_classes() {
        // On a directed f-cycle every vertex looks alike: the partition at
        // any k has one class per (distance pattern), independent of n.
        let g = generate::cycle(6, "f");
        let p = cpq_path_partition(&g, 2);
        // Five classes: {f}, {ff}, {f⁻¹}, {f⁻¹f⁻¹}, and the loop class
        // {ff⁻¹, f⁻¹f} — each with one pair per vertex.
        assert_eq!(p.class_count(), 5);
        assert_eq!(p.class_loop.iter().filter(|&&l| l).count(), 1);
        for c in 0..p.class_count() {
            let members = p.pair_classes.iter().filter(|&&(_, cc)| cc as usize == c).count();
            assert_eq!(members, 6, "class {c} should contain one pair per vertex");
        }
    }

    #[test]
    fn refinement_grows_classes_with_k() {
        let g = generate::gex();
        let c1 = cpq_path_partition(&g, 1).class_count();
        let c2 = cpq_path_partition(&g, 2).class_count();
        assert!(c2 >= c1, "k=2 partition refines k=1 ({c2} < {c1})");
    }

    #[test]
    fn loop_and_nonloop_never_share_class() {
        let g = generate::gex();
        let p = cpq_path_partition(&g, 2);
        for &(pair, c) in &p.pair_classes {
            assert_eq!(pair.is_loop(), p.class_loop[c as usize]);
        }
    }

    #[test]
    fn clique_has_uniform_classes() {
        let g = generate::clique(4, "f");
        let p = check_invariants(&g, 2);
        // All non-loop pairs are alike; all loop pairs are alike.
        assert_eq!(p.class_count(), 2);
    }

    /// Sharded-range builds must reconstruct the exact pair → `L≤k`
    /// mapping of the sequential build (class ids may differ; the class
    /// *contents* — loop flag and sequence set per pair — may not).
    fn check_range_build_equivalence(g: &Graph, k: usize, shard_counts: &[usize]) {
        let seq = cpq_path_partition(g, k);
        let seq_map: std::collections::HashMap<Pair, (&Vec<LabelSeq>, bool)> = seq
            .pair_classes
            .iter()
            .map(|&(p, c)| (p, (&seq.class_seqs[c as usize], seq.class_loop[c as usize])))
            .collect();
        let base = RefinementBase::new(g);
        for &shards in shard_counts {
            let parts: Vec<Partition> = base
                .balanced_ranges(shards)
                .into_iter()
                .map(|r| base.partition_range(k, r))
                .collect();
            let merged = merge_partitions(parts);
            assert_eq!(merged.pair_count(), seq.pair_count(), "{shards} shards, k={k}");
            for &(p, c) in &merged.pair_classes {
                let (expect_seqs, expect_loop) =
                    seq_map.get(&p).unwrap_or_else(|| panic!("pair {p:?} not in sequential build"));
                assert_eq!(&&merged.class_seqs[c as usize], expect_seqs, "pair {p:?}");
                assert_eq!(merged.class_loop[c as usize], *expect_loop, "pair {p:?}");
            }
            // Merged classes can only coarsen the sequential partition.
            assert!(merged.class_count() <= seq.class_count(), "{shards} shards, k={k}");
        }
    }

    #[test]
    fn range_build_matches_sequential_on_gex() {
        let g = generate::gex();
        for k in 1..=3 {
            check_range_build_equivalence(&g, k, &[1, 2, 3, 8]);
        }
    }

    #[test]
    fn range_build_matches_sequential_on_random_graphs() {
        for seed in 0..3 {
            let cfg = generate::RandomGraphConfig::social(60, 240, 3, seed);
            let g = generate::random_graph(&cfg);
            check_range_build_equivalence(&g, 2, &[1, 2, 4, 16]);
        }
    }

    #[test]
    fn single_range_covers_everything() {
        let g = generate::gex();
        let base = RefinementBase::new(&g);
        let whole = base.partition_range(2, 0..g.vertex_count());
        let seq = cpq_path_partition(&g, 2);
        assert_eq!(whole.pair_count(), seq.pair_count());
        assert_eq!(
            whole.pair_classes.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            seq.pair_classes.iter().map(|&(p, _)| p).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_range_yields_empty_partition() {
        let g = generate::gex();
        let base = RefinementBase::new(&g);
        let p = base.partition_range(2, 3..3);
        assert_eq!(p.pair_count(), 0);
        assert_eq!(p.class_count(), 0);
        let merged = merge_partitions(vec![p]);
        assert_eq!(merged.pair_count(), 0);
    }

    #[test]
    fn balanced_ranges_tile_vertices() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(33, 150, 3, 4));
        let base = RefinementBase::new(&g);
        for shards in [1, 2, 5, 33, 64] {
            let ranges = base.balanced_ranges(shards);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, g.vertex_count());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            for r in &ranges {
                assert!(r.start < r.end, "empty range {r:?}");
            }
        }
    }

    #[test]
    fn parallel_level1_is_structurally_identical() {
        // Not just query-equivalent: the parallel pass must reproduce the
        // sequential pair_blocks/block_seqs byte for byte.
        let graphs = vec![
            generate::gex(),
            generate::cycle(6, "f"),
            generate::random_graph(&generate::RandomGraphConfig::social(50, 220, 3, 7)),
            cpqx_graph::GraphBuilder::new().build(),
        ];
        for g in &graphs {
            let seq = RefinementBase::new(g);
            for threads in [2, 3, 8, 16] {
                let (par, _) = RefinementBase::with_threads_timed(g, threads);
                assert_eq!(
                    seq.level1_pair_blocks(),
                    par.level1_pair_blocks(),
                    "pair_blocks diverge at {threads} threads"
                );
                assert_eq!(
                    seq.level1_block_seqs(),
                    par.level1_block_seqs(),
                    "block_seqs diverge at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn star_separates_center_from_spokes() {
        let g = generate::star(5, "f");
        let p = check_invariants(&g, 2);
        // (0,i): edge f + 2-paths; (i,0): inverse; (i,j): spoke to spoke
        // via center; (i,i)/(0,0): cyclic f·f⁻¹ patterns.
        assert!(p.class_count() >= 4);
    }
}
