//! Adaptive selection of interests and k — the paper's second future-work
//! direction ("investigate practical methods for scalable index
//! construction that adaptively controls interests and k", Sec. VII).
//!
//! The advisor observes a query workload, counts the label sequences its
//! chains would look up, and recommends (a) the smallest `k` covering the
//! observed chain chunks and (b) a frequency-ordered interest set trimmed
//! to an estimated size budget. The recommendation feeds directly into
//! [`CpqxIndex::build_interest_aware`].

use crate::index::CpqxIndex;
use crate::interest::normalize_interests;
use cpqx_graph::{Graph, LabelSeq, Pair};
use cpqx_query::Cpq;
use std::collections::HashMap;

/// Tuning knobs for the recommendation.
#[derive(Clone, Copy, Debug)]
pub struct AdvisorConfig {
    /// Upper bound for the recommended `k` (the paper sweeps 1..4).
    pub max_k: usize,
    /// Maximum number of multi-label interests to register.
    pub max_interests: usize,
    /// Approximate budget on the *pair volume* the interests may
    /// materialize (`None` = unbounded). Volume is estimated by capped
    /// expansion, so it is an upper-bound-ish guide, not a guarantee.
    pub pair_budget: Option<usize>,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig { max_k: 4, max_interests: 64, pair_budget: None }
    }
}

/// Workload-driven interest/k advisor.
#[derive(Default, Debug)]
pub struct WorkloadAdvisor {
    /// Multi-label sequence → observation count.
    counts: HashMap<LabelSeq, usize>,
    observed: usize,
}

impl WorkloadAdvisor {
    /// Creates an empty advisor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queries observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Records one query: every maximal label run contributes its windows
    /// of lengths `2..=max_k` (the chunks a lookup could serve).
    pub fn observe(&mut self, q: &Cpq, max_k: usize) {
        self.observed += 1;
        let max_k = max_k.min(cpqx_graph::MAX_SEQ_LEN);
        for run in q.label_runs() {
            for len in 2..=max_k.min(run.len()) {
                for w in run.windows(len) {
                    *self.counts.entry(LabelSeq::from_slice(w)).or_default() += 1;
                }
            }
        }
    }

    /// Recommends `(k, interests)` under `cfg`, using `g` to estimate the
    /// pair volume of each candidate interest.
    pub fn recommend(&self, g: &Graph, cfg: &AdvisorConfig) -> (usize, Vec<LabelSeq>) {
        // k: the longest chunk that is actually worth a single lookup —
        // the longest observed window length, floored at 2.
        let k = self.counts.keys().map(LabelSeq::len).max().unwrap_or(2).clamp(2, cfg.max_k);

        // Rank candidates: frequency first, longer sequences break ties
        // (one long lookup replaces several short ones).
        let mut ranked: Vec<(&LabelSeq, usize)> =
            self.counts.iter().map(|(s, &c)| (s, c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.len().cmp(&a.0.len())).then(a.0.cmp(b.0)));

        let mut interests = Vec::new();
        let mut volume = 0usize;
        for (seq, _) in ranked {
            if interests.len() >= cfg.max_interests {
                break;
            }
            if seq.len() > k {
                continue;
            }
            let est = estimate_seq_pairs(g, seq, cfg.pair_budget.unwrap_or(usize::MAX));
            if let Some(budget) = cfg.pair_budget {
                if volume + est > budget && !interests.is_empty() {
                    continue; // skip: too expensive; cheaper ones may fit
                }
            }
            volume += est;
            interests.push(*seq);
        }
        (k, normalize_interests(interests, k).into_iter().collect())
    }

    /// Convenience: recommend and build in one step.
    pub fn build_index(&self, g: &Graph, cfg: &AdvisorConfig) -> CpqxIndex {
        let (k, interests) = self.recommend(g, cfg);
        CpqxIndex::build_interest_aware(g, k, interests)
    }
}

/// Estimates `|⟦seq⟧|` by capped adjacency expansion: exact below `cap`,
/// truncated (and therefore an underestimate) above it — sufficient for
/// budget-guided selection without paying full evaluation cost.
pub fn estimate_seq_pairs(g: &Graph, seq: &LabelSeq, cap: usize) -> usize {
    let mut pairs: Vec<Pair> = g.edge_pairs(seq.get(0)).to_vec();
    for i in 1..seq.len() {
        if pairs.is_empty() {
            return 0;
        }
        pairs.truncate(cap);
        pairs = cpqx_query::ops::expand_adjacency(g, &pairs, seq.get(i));
    }
    pairs.len().min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_graph::{ExtLabel, Label};
    use cpqx_query::eval::eval_reference;

    fn l(i: u16) -> ExtLabel {
        Label(i).fwd()
    }

    #[test]
    fn frequent_sequences_rank_first() {
        let g = generate::gex();
        let mut adv = WorkloadAdvisor::new();
        let hot = Cpq::chain(&[l(0), l(0)]);
        let cold = Cpq::chain(&[l(0), l(1)]);
        for _ in 0..10 {
            adv.observe(&hot, 4);
        }
        adv.observe(&cold, 4);
        let (_, interests) =
            adv.recommend(&g, &AdvisorConfig { max_interests: 1, ..Default::default() });
        assert_eq!(interests, vec![LabelSeq::from_slice(&[l(0), l(0)])]);
    }

    #[test]
    fn k_tracks_longest_observed_chunk() {
        let g = generate::gex();
        let mut adv = WorkloadAdvisor::new();
        adv.observe(&Cpq::chain(&[l(0), l(0), l(1)]), 4);
        let (k, _) = adv.recommend(&g, &AdvisorConfig::default());
        assert_eq!(k, 3);
        // Capped by max_k.
        let (k, _) = adv.recommend(&g, &AdvisorConfig { max_k: 2, ..Default::default() });
        assert_eq!(k, 2);
    }

    #[test]
    fn empty_workload_gets_sane_defaults() {
        let g = generate::gex();
        let adv = WorkloadAdvisor::new();
        let (k, interests) = adv.recommend(&g, &AdvisorConfig::default());
        assert_eq!(k, 2);
        assert!(interests.is_empty());
        // The built index still answers arbitrary queries.
        let idx = adv.build_index(&g, &AdvisorConfig::default());
        let q = cpqx_query::parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(idx.evaluate(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn budget_limits_selection() {
        let g = generate::random_graph(&generate::RandomGraphConfig::social(200, 1500, 3, 3));
        let mut adv = WorkloadAdvisor::new();
        // Observe many distinct 2-chunks.
        for a in 0..g.ext_label_count() {
            for b in 0..g.ext_label_count() {
                adv.observe(&Cpq::chain(&[ExtLabel(a), ExtLabel(b)]), 2);
            }
        }
        let unbounded = adv.recommend(&g, &AdvisorConfig::default()).1.len();
        let tight = adv
            .recommend(&g, &AdvisorConfig { pair_budget: Some(500), ..Default::default() })
            .1
            .len();
        assert!(tight < unbounded, "budget must trim interests ({tight} vs {unbounded})");
        assert!(tight >= 1, "the cheapest interest still fits");
    }

    #[test]
    fn recommended_index_serves_workload_with_single_lookups() {
        let g = generate::gmark(400, 2);
        let mut adv = WorkloadAdvisor::new();
        let cites = g.label_named("cites").unwrap().fwd();
        let hot = Cpq::chain(&[cites, cites]);
        for _ in 0..5 {
            adv.observe(&hot, 4);
        }
        let idx = adv.build_index(&g, &AdvisorConfig::default());
        assert!(idx.is_indexed(&LabelSeq::from_slice(&[cites, cites])));
        assert_eq!(idx.evaluate(&g, &hot), eval_reference(&g, &hot));
    }

    #[test]
    fn estimate_is_exact_below_cap() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let seq = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
        let exact = crate::interest::seq_pairs(&g, &seq).len();
        assert_eq!(estimate_seq_pairs(&g, &seq, usize::MAX), exact);
        assert!(estimate_seq_pairs(&g, &seq, 1) <= exact);
    }
}
