//! Lazy index maintenance under graph and interest updates (Secs. IV-E and
//! V-C).
//!
//! The update procedures keep query results correct without recomputing the
//! partition: affected pairs are detached from their classes and regrouped
//! into *fresh* classes; existing classes are never merged, even if their
//! pairs become equivalent again (Prop. 4.2 — correctness only needs every
//! class to be homogeneous in `(cyclicity, L≤k ∩ indexed-sequences)`, never
//! maximal). The index therefore fragments over time; Table VII measures
//! exactly this, and `rebuild` restores the minimal partition.
//!
//! Deviation noted in DESIGN.md: pairs receiving the *same* new signature
//! within one update call share one fresh class (the paper creates
//! singletons); this is strictly less fragmentation with an unchanged
//! correctness argument.

use crate::bisim::ClassId;
use crate::index::CpqxIndex;
use crate::interest::seq_pairs;
use crate::paths::{affected_pairs, label_seqs_between};
use cpqx_graph::{Graph, Label, LabelSeq, Pair, VertexId};
use std::collections::HashMap;

impl CpqxIndex {
    /// Deletes the base edge `(v, u, ℓ)` from the graph and updates the
    /// index lazily. Returns `false` if the edge did not exist (no change).
    pub fn delete_edge(&mut self, g: &mut Graph, v: VertexId, u: VertexId, l: Label) -> bool {
        if !g.remove_edge(v, u, l) {
            return false;
        }
        self.refresh_pairs(g, affected_pairs(g, v, u, self.k));
        true
    }

    /// Inserts the base edge `(v, u, ℓ)` into the graph and updates the
    /// index lazily. Returns `false` if the edge already existed.
    pub fn insert_edge(&mut self, g: &mut Graph, v: VertexId, u: VertexId, l: Label) -> bool {
        if !g.insert_edge(v, u, l) {
            return false;
        }
        self.refresh_pairs(g, affected_pairs(g, v, u, self.k));
        true
    }

    /// Relabels an edge: deletion followed by insertion (the paper handles
    /// label changes "by combinations of edge deletion and insertion").
    pub fn change_edge_label(
        &mut self,
        g: &mut Graph,
        v: VertexId,
        u: VertexId,
        from: Label,
        to: Label,
    ) -> bool {
        if !self.delete_edge(g, v, u, from) {
            return false;
        }
        self.insert_edge(g, v, u, to);
        true
    }

    /// Adds an isolated vertex (no index change — it participates in no
    /// non-trivial path).
    pub fn add_vertex(&mut self, g: &mut Graph, name: impl Into<String>) -> VertexId {
        g.add_vertex(name)
    }

    /// Deletes a vertex by removing all incident edges one at a time, per
    /// the paper's vertex-deletion procedure. The id stays allocated but
    /// isolated.
    pub fn delete_vertex(&mut self, g: &mut Graph, v: VertexId) {
        let incident: Vec<(VertexId, VertexId, Label)> = g
            .adjacency(v)
            .iter()
            .map(|&(el, t)| {
                let el = cpqx_graph::ExtLabel(el);
                if el.is_inverse() {
                    (t, v, el.base())
                } else {
                    (v, t, el.base())
                }
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for (a, b, l) in incident {
            if seen.insert((a, b, l)) {
                self.delete_edge(g, a, b, l);
            }
        }
    }

    /// iaCPQx only: registers a new interest sequence and indexes its pairs
    /// (Sec. V-C, label sequence insertion). Length-1 sequences are always
    /// indexed and need no registration. Returns `false` if it was already
    /// an interest (or the index is not interest-aware / the sequence is
    /// longer than `k`).
    pub fn insert_interest(&mut self, g: &Graph, seq: LabelSeq) -> bool {
        if seq.len() <= 1 || seq.len() > self.k {
            return false;
        }
        let Some(interests) = self.interests.as_mut() else {
            return false;
        };
        if !interests.insert(seq) {
            return false;
        }
        let pairs = seq_pairs(g, &seq);
        self.refresh_pairs(g, pairs.clone());
        // Re-registration: pairs whose class already carried `seq` (a
        // previously deleted interest leaves the class metadata in place)
        // are "unchanged" for the refresh, but their classes must still
        // appear under the re-added Il2c key. Class homogeneity makes this
        // sound: if one member matches `seq`, the whole class does.
        let mut classes: Vec<ClassId> = pairs.iter().filter_map(|&p| self.class_of(p)).collect();
        classes.sort_unstable();
        classes.dedup();
        let posting = std::sync::Arc::make_mut(self.il2c.entry(seq).or_default());
        for c in classes {
            if let Err(i) = posting.binary_search(&c) {
                posting.insert(i, c);
            }
        }
        true
    }

    /// iaCPQx only: drops an interest sequence — "we can just delete the
    /// deleted label sequence from Il2c" (Sec. V-C). Classes are *not*
    /// merged; queries remain correct because the sequence is no longer a
    /// lookup key.
    pub fn delete_interest(&mut self, seq: &LabelSeq) -> bool {
        if seq.len() <= 1 {
            return false;
        }
        let Some(interests) = self.interests.as_mut() else {
            return false;
        };
        if !interests.remove(seq) {
            return false;
        }
        self.il2c.remove(seq);
        // Strip the sequence from class metadata so later refreshes do not
        // see a phantom difference (cheap: postings already told us which
        // classes carry it — but they were just dropped, so scan lazily on
        // demand instead; class_seqs keeps the stale entry and refresh
        // comparisons intersect against the *current* interest set).
        true
    }

    /// Rebuilds the index from scratch (defragmentation), preserving the
    /// mode and parameters.
    pub fn rebuild(&mut self, g: &Graph) {
        let fresh = match &self.interests {
            None => CpqxIndex::build(g, self.k),
            Some(lq) => CpqxIndex::build_interest_aware(g, self.k, lq.iter().copied()),
        };
        *self = fresh;
    }

    /// The indexed label-sequence set of a pair on the *current* graph:
    /// `L≤k(src,dst)` filtered to sequences one LOOKUP can answer.
    fn indexed_seqs_of(&self, g: &Graph, p: Pair) -> Vec<LabelSeq> {
        let all = label_seqs_between(g, p.src(), p.dst(), self.k);
        match &self.interests {
            None => all,
            Some(lq) => all.into_iter().filter(|s| s.len() == 1 || lq.contains(s)).collect(),
        }
    }

    /// Core lazy-update step: recompute the indexed sequence set of each
    /// candidate pair; detach pairs whose set changed and regroup them into
    /// fresh classes keyed by `(is-loop, new set)`.
    ///
    /// All mutation goes through the index's chunk-local copy-on-write
    /// primitives (`class_slot_mut`, `p2c_insert`/`p2c_remove`,
    /// `il2c_push`), so an update copies only the class chunks, p2c shards
    /// and posting lists it actually touches — unchanged candidates (the
    /// common case for over-approximated affected sets) copy nothing.
    fn refresh_pairs(&mut self, g: &Graph, candidates: Vec<Pair>) {
        let mut groups: HashMap<(bool, Vec<LabelSeq>), ClassId> = HashMap::new();
        for pair in candidates {
            let new_seqs = self.indexed_seqs_of(g, pair);
            let old = self.class_of(pair);
            if let Some(c) = old {
                if self.class_sequences(c) == new_seqs.as_slice() {
                    continue; // unchanged — e.g. an alternative path exists
                }
                // Detach from the old class (it may become a tombstone).
                let (chunk, off) = self.class_slot_mut(c);
                let list = &mut chunk.pairs[off];
                if let Ok(i) = list.binary_search(&pair) {
                    list.remove(i);
                }
                self.p2c_remove(pair);
                self.frag.refreshed_pairs += 1;
            } else if new_seqs.is_empty() {
                continue;
            }
            if new_seqs.is_empty() {
                continue; // pair left P≤k entirely
            }
            let key = (pair.is_loop(), new_seqs);
            let c = match groups.get(&key) {
                Some(&c) => c,
                None => {
                    let c = self.push_class(key.0, key.1.clone());
                    self.frag.fresh_classes += 1;
                    // Fresh ids exceed all existing ones, so appending keeps
                    // every posting list sorted.
                    for s in &key.1 {
                        self.il2c_push(*s, c);
                    }
                    groups.insert(key, c);
                    c
                }
            };
            let (chunk, off) = self.class_slot_mut(c);
            let list = &mut chunk.pairs[off];
            if let Err(i) = list.binary_search(&pair) {
                list.insert(i, pair);
            }
            self.p2c_insert(pair, c);
        }
        // Re-baseline an index built from an empty graph on its first
        // growth: a zero baseline carries no fragmentation signal, and
        // measuring the first real classes against it would read as
        // instant maximal fragmentation (and could thrash a serving
        // layer's auto-rebuild threshold).
        if self.frag.baseline_classes == 0 && self.class_slots() > 0 {
            self.frag.baseline_classes = self.class_slots();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;

    #[test]
    fn affected_pairs_cover_edge_endpoints() {
        let g = generate::gex();
        let (sue, joe) = (g.vertex_named("sue").unwrap(), g.vertex_named("joe").unwrap());
        let aff = affected_pairs(&g, sue, joe, 2);
        assert!(aff.contains(&Pair::new(sue, joe)));
        assert!(aff.contains(&Pair::new(joe, sue)));
        assert!(aff.contains(&Pair::new(sue, sue)));
    }
}
