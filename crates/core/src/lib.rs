//! CPQx and iaCPQx — the CPQ-aware path indexes of *Language-aware Indexing
//! for Conjunctive Path Queries* (ICDE 2022).
//!
//! The index partitions the s-t pairs `P≤k` of a graph into CPQ-equivalence
//! classes via k-path-bisimulation refinement ([`bisim`], Algorithm 1) or
//! interest-aware path-equivalence ([`interest`], Sec. V), and stores two
//! inverted structures (Def. 4.3): `Il2c` mapping label sequences to class
//! ids and `Ic2p` mapping class ids to s-t pairs. Query processing
//! ([`exec`], Algorithms 3–4) stays at the class level through conjunctions
//! and identity checks, pruning without touching pairs; joins materialize
//! through sorted-merge operators. The full index life cycle is supported:
//! construction, query processing, and lazy maintenance under edge, vertex,
//! and interest updates ([`maintain`], Secs. IV-E, V-C).
//!
//! # Example
//!
//! ```
//! use cpqx_core::CpqxIndex;
//! use cpqx_graph::generate::gex;
//! use cpqx_query::parse_cpq;
//!
//! let g = gex();
//! let index = CpqxIndex::build(&g, 2);
//! // The paper's triad query ﬀ ∩ f⁻¹: three answers, found by
//! // intersecting two class-id lists instead of comparing pairs.
//! let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
//! assert_eq!(index.evaluate(&g, &q).len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod bisim;
pub mod exec;
pub mod index;
pub mod interest;
pub mod maintain;
pub mod optimize;
pub mod paths;
pub mod pool;
pub mod serialize;

pub use bisim::{cpq_path_partition, merge_partitions, ClassId, Partition, RefinementBase};
pub use exec::{ExecOptions, Executor, Intermediate};
pub use index::{CpqxIndex, Fragmentation, IndexStats};
pub use interest::{interest_partition, interest_partition_range, normalize_interests};
pub use optimize::{estimate_plan_cost, optimize_query, optimize_query_costed};
