//! Cost-based plan optimization over index statistics.
//!
//! The paper derives its execution plan syntactically (Fig. 4) and notes
//! that "further query optimization is an interesting rich topic for future
//! research" (Sec. IV-D). This module implements that extension:
//!
//! * **selectivity-aware chain chunking** — a label run is split into
//!   `≤ k` LOOKUPs by dynamic programming over the estimated pair volume
//!   of every admissible chunk (the syntactic planner greedily takes the
//!   longest prefix). An empty chunk anywhere proves the chain empty and
//!   is preferred at zero cost.
//! * **join association** — the chunk relations of a chain are associated
//!   by a matrix-chain-style DP minimizing estimated intermediate sizes
//!   under a uniform-middle-vertex assumption, instead of always folding
//!   left-deep.
//! * **conjunct ordering** — conjuncts are evaluated cheapest-first, so
//!   the executor's empty-early-exit fires as soon as possible and sorted
//!   intersections are driven by the smallest operand.
//!
//! All rewrites are estimate-only: the produced plan evaluates through the
//! unmodified executor and returns identical answers (asserted by tests and
//! the `ablation_planner` bench).

use crate::index::CpqxIndex;
use cpqx_graph::{ExtLabel, Graph, LabelSeq};
use cpqx_query::plan::Plan;
use cpqx_query::Cpq;

/// A plan annotated with its estimated result cardinality.
struct Costed {
    plan: Plan,
    /// Estimated number of result pairs.
    rows: f64,
    /// Estimated cumulative work (intermediate rows touched).
    cost: f64,
}

/// Optimizes `q` against `index` (statistics) and `g` (vertex count for
/// join-size estimates), returning a plan for the standard executor.
pub fn optimize_query(index: &CpqxIndex, g: &Graph, q: &Cpq) -> Plan {
    build(index, g, q).plan
}

/// Like [`optimize_query`] but also returns the plan's estimated
/// cumulative execution cost (intermediate rows touched), from the same
/// single optimization pass. The serving engine caches exactly this pair:
/// the cost describes the plan that actually executes, and its
/// result-cache admission policy thresholds on it — cheap queries are not
/// worth a cache slot because re-executing them costs less than the
/// eviction they cause.
pub fn optimize_query_costed(index: &CpqxIndex, g: &Graph, q: &Cpq) -> (Plan, f64) {
    let costed = build(index, g, q);
    (costed.plan, costed.cost)
}

/// The estimated execution cost of `q`'s optimized plan (see
/// [`optimize_query_costed`]).
pub fn estimate_plan_cost(index: &CpqxIndex, g: &Graph, q: &Cpq) -> f64 {
    build(index, g, q).cost
}

/// Estimated pair volume of one lookup. Exact for short posting lists;
/// extrapolated from a 32-class sample for long ones, so estimation cost
/// stays negligible next to even the cheapest query.
fn lookup_rows(index: &CpqxIndex, seq: &LabelSeq) -> f64 {
    const SAMPLE: usize = 32;
    let classes = index.lookup(seq);
    if classes.len() <= SAMPLE {
        classes.iter().map(|&c| index.class_pairs(c).len()).sum::<usize>() as f64
    } else {
        let step = classes.len() / SAMPLE;
        let sampled: usize =
            classes.iter().step_by(step).take(SAMPLE).map(|&c| index.class_pairs(c).len()).sum();
        sampled as f64 / SAMPLE as f64 * classes.len() as f64
    }
}

fn join_rows(left: f64, right: f64, g: &Graph) -> f64 {
    // Uniform middle vertex: |A ⋈ B| ≈ |A|·|B| / |V|.
    (left * right / (g.vertex_count().max(1) as f64)).min(left * right)
}

fn build(index: &CpqxIndex, g: &Graph, q: &Cpq) -> Costed {
    match q {
        Cpq::Id => Costed {
            plan: Plan::AllId,
            rows: g.vertex_count() as f64,
            cost: g.vertex_count() as f64,
        },
        Cpq::Label(l) => {
            let seq = LabelSeq::single(*l);
            let rows = lookup_rows(index, &seq);
            // A lookup's *work* is its class-id list; the pairs are only
            // materialized if a join needs them (accounted there).
            let cost = index.lookup(&seq).len() as f64;
            Costed { plan: Plan::Lookup(seq), rows, cost }
        }
        Cpq::Conj(..) => {
            let mut conjuncts = Vec::new();
            flatten_conj(q, &mut conjuncts);
            let mut has_id = false;
            let mut costed: Vec<Costed> = Vec::new();
            for c in conjuncts {
                if matches!(c, Cpq::Id) {
                    has_id = true;
                } else {
                    costed.push(build(index, g, c));
                }
            }
            if costed.is_empty() {
                return Costed {
                    plan: Plan::AllId,
                    rows: g.vertex_count() as f64,
                    cost: g.vertex_count() as f64,
                };
            }
            // Cheapest-first evaluation order.
            costed.sort_by(|a, b| a.cost.total_cmp(&b.cost));
            let mut it = costed.into_iter();
            let first = it.next().unwrap();
            let (mut plan, mut rows, mut cost) = (first.plan, first.rows, first.cost);
            for next in it {
                rows = rows.min(next.rows);
                cost += next.cost + rows;
                plan = Plan::Conj(Box::new(plan), Box::new(next.plan));
            }
            if has_id {
                plan = fuse_id(plan);
                rows /= (g.vertex_count().max(1) as f64).sqrt();
            }
            Costed { plan, rows, cost }
        }
        Cpq::Join(..) => {
            let mut factors = Vec::new();
            flatten_join(q, &mut factors);
            // Group consecutive labels into runs; build costed parts.
            let mut parts: Vec<Costed> = Vec::new();
            let mut run: Vec<ExtLabel> = Vec::new();
            for f in factors {
                match f {
                    Cpq::Id => {}
                    Cpq::Label(l) => run.push(*l),
                    complex => {
                        if !run.is_empty() {
                            parts.extend(chunk_run_optimal(index, &run));
                            run.clear();
                        }
                        parts.push(build(index, g, complex));
                    }
                }
            }
            if !run.is_empty() {
                parts.extend(chunk_run_optimal(index, &run));
            }
            if parts.is_empty() {
                return Costed {
                    plan: Plan::AllId,
                    rows: g.vertex_count() as f64,
                    cost: g.vertex_count() as f64,
                };
            }
            associate_joins(parts, g)
        }
    }
}

/// Optimal chunking of a label run into indexed LOOKUPs of length ≤ k.
///
/// Every chunk boundary forces a join (which materializes pairs), so the
/// DP minimizes lexicographically: **fewest chunks first** — matching the
/// paper's longest-prefix rule — then the total estimated pair volume, so
/// selectivity breaks ties between equal-length chunkings (and an empty
/// chunk, which proves the chain empty, is preferred for free).
fn chunk_run_optimal(index: &CpqxIndex, run: &[ExtLabel]) -> Vec<Costed> {
    let n = run.len();
    let k = index.k().min(cpqx_graph::MAX_SEQ_LEN);
    // best[i] = (chunks, total rows, chunk length taken at i) from i to end.
    let mut best: Vec<(usize, f64, usize)> = vec![(usize::MAX, f64::INFINITY, 1); n + 1];
    best[n] = (0, 0.0, 0);
    for i in (0..n).rev() {
        for len in 1..=k.min(n - i) {
            let seq = LabelSeq::from_slice(&run[i..i + len]);
            if len > 1 && !index.is_indexed(&seq) {
                continue;
            }
            let rows = lookup_rows(index, &seq);
            let rest = best[i + len];
            let cand = (1 + rest.0, rows + rest.1);
            if cand.0 < best[i].0 || (cand.0 == best[i].0 && cand.1 < best[i].1) {
                best[i] = (cand.0, cand.1, len);
            }
        }
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let len = best[i].2.max(1);
        let seq = LabelSeq::from_slice(&run[i..i + len]);
        let rows = lookup_rows(index, &seq);
        let cost = index.lookup(&seq).len() as f64;
        out.push(Costed { plan: Plan::Lookup(seq), rows, cost });
        i += len;
    }
    out
}

/// Matrix-chain-style association of an ordered list of join operands.
fn associate_joins(parts: Vec<Costed>, g: &Graph) -> Costed {
    let n = parts.len();
    if n == 1 {
        return parts.into_iter().next().unwrap();
    }
    // dp[i][j] = best (cost, rows, split) for the subchain i..=j.
    let mut rows = vec![vec![0.0f64; n]; n];
    let mut cost = vec![vec![f64::INFINITY; n]; n];
    let mut split = vec![vec![0usize; n]; n];
    for (i, p) in parts.iter().enumerate() {
        rows[i][i] = p.rows;
        cost[i][i] = p.cost;
    }
    for span in 2..=n {
        for i in 0..=n - span {
            let j = i + span - 1;
            for m in i..j {
                let r = join_rows(rows[i][m], rows[m + 1][j], g);
                let c = cost[i][m] + cost[m + 1][j] + rows[i][m] + rows[m + 1][j] + r;
                if c < cost[i][j] {
                    cost[i][j] = c;
                    rows[i][j] = r;
                    split[i][j] = m;
                }
            }
        }
    }
    fn rebuild(parts: &mut Vec<Option<Plan>>, split: &[Vec<usize>], i: usize, j: usize) -> Plan {
        if i == j {
            return parts[i].take().expect("each leaf used once");
        }
        let m = split[i][j];
        let left = rebuild(parts, split, i, m);
        let right = rebuild(parts, split, m + 1, j);
        Plan::Join(Box::new(left), Box::new(right))
    }
    let total_cost = cost[0][n - 1];
    let total_rows = rows[0][n - 1];
    let mut slots: Vec<Option<Plan>> = parts.into_iter().map(|p| Some(p.plan)).collect();
    let plan = rebuild(&mut slots, &split, 0, n - 1);
    Costed { plan, rows: total_rows, cost: total_cost }
}

fn flatten_conj<'q>(q: &'q Cpq, out: &mut Vec<&'q Cpq>) {
    match q {
        Cpq::Conj(a, b) => {
            flatten_conj(a, out);
            flatten_conj(b, out);
        }
        other => out.push(other),
    }
}

fn flatten_join<'q>(q: &'q Cpq, out: &mut Vec<&'q Cpq>) {
    match q {
        Cpq::Join(a, b) => {
            flatten_join(a, out);
            flatten_join(b, out);
        }
        other => out.push(other),
    }
}

fn fuse_id(plan: Plan) -> Plan {
    match plan {
        Plan::Lookup(s) => Plan::LookupId(s),
        Plan::Join(a, b) => Plan::JoinId(a, b),
        Plan::Conj(a, b) => Plan::ConjId(a, b),
        fused => fused,
    }
}

impl CpqxIndex {
    /// Evaluates `q` through the cost-based optimizer instead of the
    /// syntactic planner. Answers are identical; plans may differ.
    pub fn evaluate_optimized(&self, g: &Graph, q: &Cpq) -> Vec<cpqx_graph::Pair> {
        crate::exec::Executor::new(self, g).run(&optimize_query(self, g, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn optimized_plans_preserve_answers() {
        use cpqx_query::ast::Template;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for seed in 0..3u64 {
            let cfg = generate::RandomGraphConfig::social(60, 240, 3, seed);
            let g = generate::random_graph(&cfg);
            let idx = CpqxIndex::build(&g, 2);
            for t in Template::ALL {
                for _ in 0..3 {
                    let labels: Vec<ExtLabel> = (0..t.arity())
                        .map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count())))
                        .collect();
                    let q = t.instantiate(&labels);
                    assert_eq!(
                        idx.evaluate_optimized(&g, &q),
                        eval_reference(&g, &q),
                        "template {}",
                        t.name()
                    );
                }
            }
        }
    }

    #[test]
    fn chunking_prefers_empty_chunks() {
        // b·a has no match on a path graph; the optimizer must carve the
        // run so one chunk is the (empty) ⟨b,a⟩ lookup — total cost 0 —
        // instead of two non-empty singleton lookups.
        let g = generate::labeled_path(&["a", "b"]);
        let idx = CpqxIndex::build(&g, 2);
        let a = g.label_named("a").unwrap().fwd();
        let b = g.label_named("b").unwrap().fwd();
        let run = [b, a];
        let chunks = chunk_run_optimal(&idx, &run);
        assert_eq!(chunks.len(), 1, "one empty two-label chunk beats two lookups");
        assert_eq!(chunks[0].rows, 0.0);
    }

    #[test]
    fn conjuncts_are_reordered_cheapest_first() {
        // f is much larger than the (empty) v·v lookup; the optimizer must
        // put the empty side first so evaluation can exit early.
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let q = parse_cpq("f & (v . v)", &g).unwrap();
        let plan = optimize_query(&idx, &g, &q);
        match plan {
            Plan::Conj(left, _) => {
                // the cheap (empty) v·v lookup is evaluated first
                assert!(matches!(*left, Plan::Lookup(s) if s.len() == 2));
            }
            other => panic!("expected conjunction, got {other:?}"),
        }
        assert_eq!(idx.evaluate_optimized(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn long_chain_association_is_valid() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        for text in ["f . f . f . f . f", "f . f^-1 . v . v^-1 . f . f"] {
            let q = parse_cpq(text, &g).unwrap();
            assert_eq!(idx.evaluate_optimized(&g, &q), eval_reference(&g, &q), "{text}");
        }
    }

    #[test]
    fn identity_still_fused() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let q = parse_cpq("(f . f^-1) & id", &g).unwrap();
        let plan = optimize_query(&idx, &g, &q);
        assert!(matches!(plan, Plan::LookupId(_)));
        assert_eq!(idx.evaluate_optimized(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn cost_estimates_order_queries_sensibly() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let cheap = parse_cpq("f", &g).unwrap();
        let pricey = parse_cpq("(f . f) & f^-1", &g).unwrap();
        let c0 = estimate_plan_cost(&idx, &g, &cheap);
        let c1 = estimate_plan_cost(&idx, &g, &pricey);
        assert!(c0.is_finite() && c0 >= 0.0);
        assert!(c1 > c0, "compound query must cost more: {c1} !> {c0}");
        // The estimate is deterministic — the admission policy relies on
        // equal queries getting equal costs.
        assert_eq!(c1, estimate_plan_cost(&idx, &g, &pricey));
    }

    #[test]
    fn interest_aware_optimization() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let idx =
            CpqxIndex::build_interest_aware(&g, 2, [LabelSeq::from_slice(&[f.fwd(), f.fwd()])]);
        // A chain whose only indexed 2-chunk is ⟨f,f⟩.
        let q = parse_cpq("f . f . v", &g).unwrap();
        let plan = optimize_query(&idx, &g, &q);
        let seqs = plan.lookup_seqs();
        assert!(seqs.iter().all(|s| idx.is_indexed(s)));
        assert_eq!(idx.evaluate_optimized(&g, &q), eval_reference(&g, &q));
    }
}
