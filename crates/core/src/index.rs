//! The runtime index structure `Ik = (Il2c, Ic2p)` of Def. 4.3, serving both
//! CPQx and iaCPQx (they differ only in how the partition is computed).

use crate::bisim::{cpq_path_partition, ClassId, Partition};
use crate::exec::Executor;
use crate::interest::{interest_partition, normalize_interests};
use cpqx_graph::{CowDiff, Graph, LabelSeq, Pair};
use cpqx_query::plan::{plan_query, Plan};
use cpqx_query::workload::SeqProbe;
use cpqx_query::Cpq;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Classes per copy-on-write chunk of the class partition store.
/// Fine-grained on purpose: a lazy update touches the chunks of the
/// affected pairs' (scattered) class ids plus the tail, so the shared
/// fraction improves directly with chunk count while the per-clone cost
/// stays a vector of `Arc` bumps.
pub(crate) const CLASS_CHUNK: usize = 1 << 8;

/// Source-vertex ids per copy-on-write shard of the pair → class map
/// (fine-grained for the same touched/total reason as [`CLASS_CHUNK`]).
const P2C_SHARD_BITS: u32 = 8;

/// One fixed-width class-id range of the index's partition storage: the
/// `Ic2p` rows, loop flags and sequence sets of up to [`CLASS_CHUNK`]
/// consecutive classes. Chunks sit behind `Arc` and mutate through
/// `Arc::make_mut`, so `CpqxIndex::clone` is O(#chunks) and a lazy
/// update copies only the chunks holding touched classes — fresh classes
/// append to the last chunk only.
#[derive(Clone, Default)]
pub(crate) struct ClassChunk {
    /// `Ic2p` rows: sorted s-t pairs per class.
    pub(crate) pairs: Vec<Vec<Pair>>,
    /// Per-class cyclicity flags.
    pub(crate) loops: Vec<bool>,
    /// Per-class sorted `L≤k` sequence sets.
    pub(crate) seqs: Vec<Vec<LabelSeq>>,
}

/// A CPQ-aware path index (CPQx, Sec. IV) or its interest-aware variant
/// (iaCPQx, Sec. V).
///
/// Two data structures, per Def. 4.3:
///
/// * `Il2c : L≤k → {c}` — label sequence to sorted class-id posting list,
/// * `Ic2p : c → P(c)` — class id to sorted s-t pair list,
///
/// plus the auxiliary structures the paper's maintenance procedures need:
/// per-class loop flags (O(1) IDENTITY), per-class sequence sets (to decide
/// whether an affected pair's `L≤k` changed), and the pair → class inverted
/// index of Sec. IV-E.
///
/// The type is `Clone` so a serving layer can snapshot it, apply
/// maintenance to the copy, and atomically publish the result without
/// blocking readers of the old version (see the `cpqx-engine` crate).
///
/// # Copy-on-write storage
///
/// The heavyweight stores are structurally shared between clones:
///
/// * the class partition (`Ic2p` rows, loop flags, sequence sets) lives
///   in fixed-width [`ClassChunk`]s behind `Arc`,
/// * the pair → class inverted index is sharded by source-vertex range
///   behind `Arc`,
/// * `Il2c` posting lists sit individually behind `Arc` (the key set is
///   small — O(|L|ᵏ) sequences — so the map itself clones cheaply).
///
/// Cloning is therefore O(#chunks + #shards + #sequences), and the lazy
/// maintenance procedures copy only what they touch via `Arc::make_mut`
/// — the property that makes the engine's per-transaction snapshot
/// O(changed) instead of O(index). [`CpqxIndex::cow_diff`] reports the
/// sharing between two descendants.
#[derive(Clone)]
pub struct CpqxIndex {
    pub(crate) k: usize,
    /// `None` for full CPQx; `Some(Lq)` for iaCPQx (length-1 sequences are
    /// implicit and not stored here).
    pub(crate) interests: Option<BTreeSet<LabelSeq>>,
    pub(crate) il2c: HashMap<LabelSeq, Arc<Vec<ClassId>>>,
    /// Class partition store, chunked by class-id range.
    pub(crate) classes: Vec<Arc<ClassChunk>>,
    /// Allocated class slots (tombstones included) across all chunks.
    pub(crate) class_count: usize,
    /// Pair → class map, sharded by source-vertex range.
    pub(crate) p2c: Vec<Arc<HashMap<Pair, ClassId>>>,
    /// Indexed pairs across all shards.
    pub(crate) pair_count: usize,
    pub(crate) frag: FragCounters,
}

/// Cumulative lazy-maintenance accounting, reset by every full build (see
/// [`CpqxIndex::fragmentation`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct FragCounters {
    /// Class count of the full build this index descends from — the
    /// minimal-partition baseline fragmentation is measured against.
    pub(crate) baseline_classes: usize,
    /// Fresh classes created by lazy updates since that build.
    pub(crate) fresh_classes: u64,
    /// Pairs detached and regrouped by lazy updates since that build.
    pub(crate) refreshed_pairs: u64,
}

/// Point-in-time fragmentation report of a lazily maintained index.
///
/// The lazy update procedures (Secs. IV-E / V-C) never merge classes:
/// affected pairs are detached into *fresh* classes, so between full
/// builds the class-slot count only grows and detached-from classes may
/// become empty tombstones. This is exactly the degradation Table VII
/// measures as a size ratio; [`Fragmentation::ratio`] is its live,
/// class-count form, used by serving layers to decide when a
/// defragmenting rebuild pays off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fragmentation {
    /// Class count of the full build this index descends from.
    pub baseline_classes: usize,
    /// Allocated class slots right now, tombstones included.
    pub class_slots: usize,
    /// Classes with at least one member pair.
    pub live_classes: usize,
    /// Fresh classes created by lazy maintenance since the last build.
    pub fresh_classes: u64,
    /// Pairs detached and regrouped by lazy maintenance since the last
    /// build.
    pub refreshed_pairs: u64,
}

impl Fragmentation {
    /// `class_slots / baseline_classes` — 1.0 for a fresh build, growing
    /// monotonically under lazy maintenance (classes are never merged).
    ///
    /// An index built from an **empty** graph has `baseline_classes == 0`;
    /// such an index is treated as fresh (ratio 1.0) rather than
    /// infinitely fragmented — the first lazy update re-baselines it (see
    /// `CpqxIndex::refresh_pairs`), so an empty-seeded serving layer never
    /// trips its rebuild threshold on the very first insert.
    pub fn ratio(&self) -> f64 {
        if self.baseline_classes == 0 {
            return 1.0;
        }
        self.class_slots as f64 / self.baseline_classes as f64
    }

    /// Empty class slots left behind by detached pairs.
    pub fn tombstones(&self) -> usize {
        self.class_slots - self.live_classes
    }
}

/// Summary statistics used by the experiment harness (Tables III–IV).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexStats {
    /// `k`.
    pub k: usize,
    /// `|C|` — number of (non-empty) classes.
    pub classes: usize,
    /// `|P≤k|` — number of indexed s-t pairs.
    pub pairs: usize,
    /// Number of distinct label sequences keyed in `Il2c`.
    pub sequences: usize,
    /// Total posting-list entries in `Il2c` (≈ γ·|C|).
    pub postings: usize,
    /// γ — average `|L≤k(v,u)|` over indexed pairs.
    pub gamma: f64,
    /// Core index bytes: `Il2c` + `Ic2p` (Def. 4.3's structures, the
    /// quantity Thm. 4.2 bounds and Table IV reports).
    pub core_bytes: usize,
    /// Total bytes including the maintenance structures (`class_seqs`,
    /// `p2c`, loop flags).
    pub total_bytes: usize,
}

impl CpqxIndex {
    /// Builds the full CPQ-aware index of `g` with path-length parameter
    /// `k` (Algorithms 1 and 2).
    pub fn build(g: &Graph, k: usize) -> Self {
        Self::from_partition(k, None, cpq_path_partition(g, k))
    }

    /// Builds the interest-aware index (Sec. V). `interests` may contain
    /// sequences longer than `k`; they are normalized by prefix-splitting.
    /// All length-1 sequences are always indexed.
    pub fn build_interest_aware(
        g: &Graph,
        k: usize,
        interests: impl IntoIterator<Item = LabelSeq>,
    ) -> Self {
        let lq = normalize_interests(interests, k);
        let partition = interest_partition(g, k, &lq);
        Self::from_partition(k, Some(lq), partition)
    }

    /// Materializes the runtime index `(Il2c, Ic2p)` from an
    /// already-computed partition — the seam the sharded parallel builder
    /// plugs into (`cpqx-engine` merges per-shard partitions and hands the
    /// result here).
    ///
    /// `p` must be a valid partition of the graph's `P≤k`: pairs sorted
    /// ascending, every class homogeneous in `(cyclicity, L≤k)` — as
    /// produced by [`cpq_path_partition`], by
    /// [`crate::bisim::merge_partitions`] over a tiling of source ranges,
    /// or by [`crate::interest::interest_partition`].
    pub fn from_partition(k: usize, interests: Option<BTreeSet<LabelSeq>>, p: Partition) -> Self {
        let nc = p.class_count();
        let mut il2c: HashMap<LabelSeq, Arc<Vec<ClassId>>> = HashMap::new();
        for (c, seqs) in p.class_seqs.iter().enumerate() {
            for s in seqs {
                // Classes are visited in ascending id order: postings sorted.
                Arc::make_mut(il2c.entry(*s).or_default()).push(c as ClassId);
            }
        }
        let mut idx = CpqxIndex {
            k,
            interests,
            il2c,
            classes: Vec::with_capacity(nc.div_ceil(CLASS_CHUNK)),
            class_count: 0,
            p2c: Vec::new(),
            pair_count: 0,
            frag: FragCounters { baseline_classes: nc, ..FragCounters::default() },
        };
        for (lp, seqs) in p.class_loop.into_iter().zip(p.class_seqs) {
            idx.push_class(lp, seqs);
        }
        // `pair_classes` is sorted by pair, so per-class rows stay sorted
        // under plain appends.
        for &(pair, c) in &p.pair_classes {
            let (chunk, off) = idx.class_slot_mut(c);
            chunk.pairs[off].push(pair);
            idx.p2c_insert(pair, c);
        }
        idx
    }

    // ---------------------------------------- chunked-store primitives --

    /// The chunk and in-chunk offset of a class (read path).
    #[inline]
    fn class_slot(&self, c: ClassId) -> (&ClassChunk, usize) {
        (&self.classes[c as usize / CLASS_CHUNK], c as usize % CLASS_CHUNK)
    }

    /// The chunk and in-chunk offset of a class, copying the chunk if it
    /// is shared (the copy-on-write mutation seam).
    #[inline]
    pub(crate) fn class_slot_mut(&mut self, c: ClassId) -> (&mut ClassChunk, usize) {
        (Arc::make_mut(&mut self.classes[c as usize / CLASS_CHUNK]), c as usize % CLASS_CHUNK)
    }

    /// Appends a fresh (empty) class slot, returning its id. Only the last
    /// chunk is touched.
    pub(crate) fn push_class(&mut self, is_loop: bool, seqs: Vec<LabelSeq>) -> ClassId {
        let c = self.class_count as ClassId;
        if self.class_count.is_multiple_of(CLASS_CHUNK) {
            self.classes.push(Arc::new(ClassChunk::default()));
        }
        let chunk = Arc::make_mut(self.classes.last_mut().expect("chunk just ensured"));
        chunk.pairs.push(Vec::new());
        chunk.loops.push(is_loop);
        chunk.seqs.push(seqs);
        self.class_count += 1;
        c
    }

    /// The p2c shard index of a pair (by source-vertex range).
    #[inline]
    fn p2c_shard(p: Pair) -> usize {
        (p.src() >> P2C_SHARD_BITS) as usize
    }

    /// Inserts into the pair → class map, copying only the pair's shard.
    pub(crate) fn p2c_insert(&mut self, p: Pair, c: ClassId) {
        let s = Self::p2c_shard(p);
        if s >= self.p2c.len() {
            self.p2c.resize_with(s + 1, Default::default);
        }
        if Arc::make_mut(&mut self.p2c[s]).insert(p, c).is_none() {
            self.pair_count += 1;
        }
    }

    /// Removes from the pair → class map; absent pairs copy nothing.
    pub(crate) fn p2c_remove(&mut self, p: Pair) -> Option<ClassId> {
        let s = Self::p2c_shard(p);
        let shard = self.p2c.get_mut(s)?;
        if !shard.contains_key(&p) {
            return None;
        }
        self.pair_count -= 1;
        Arc::make_mut(shard).remove(&p)
    }

    /// Appends `c` to the posting list of `s`, copying only that list.
    pub(crate) fn il2c_push(&mut self, s: LabelSeq, c: ClassId) {
        Arc::make_mut(self.il2c.entry(s).or_default()).push(c);
    }

    /// The index path-length parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether this is the interest-aware variant.
    pub fn is_interest_aware(&self) -> bool {
        self.interests.is_some()
    }

    /// The interest set (iaCPQx only; length-1 sequences are implicit).
    pub fn interests(&self) -> Option<&BTreeSet<LabelSeq>> {
        self.interests.as_ref()
    }

    /// `Il2c(ℓ)` — the sorted class ids whose pairs match `seq`.
    pub fn lookup(&self, seq: &LabelSeq) -> &[ClassId] {
        self.il2c.get(seq).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// `Ic2p(c)` — the sorted s-t pairs of class `c`.
    pub fn class_pairs(&self, c: ClassId) -> &[Pair] {
        let (chunk, off) = self.class_slot(c);
        &chunk.pairs[off]
    }

    /// Whether all pairs of class `c` are cyclic (`v = u`) — the O(1)
    /// IDENTITY check (all members share cyclicity by construction).
    pub fn class_is_loop(&self, c: ClassId) -> bool {
        let (chunk, off) = self.class_slot(c);
        chunk.loops[off]
    }

    /// The label-sequence set shared by all pairs of class `c`.
    pub fn class_sequences(&self, c: ClassId) -> &[LabelSeq] {
        let (chunk, off) = self.class_slot(c);
        &chunk.seqs[off]
    }

    /// The class of an s-t pair, if indexed.
    pub fn class_of(&self, p: Pair) -> Option<ClassId> {
        self.p2c.get(Self::p2c_shard(p))?.get(&p).copied()
    }

    /// Whether one LOOKUP can answer `seq`: full indexes answer every
    /// sequence of length ≤ k; interest-aware indexes the interests plus all
    /// length-1 sequences (Sec. V-B — the planner consults this).
    pub fn is_indexed(&self, seq: &LabelSeq) -> bool {
        if seq.is_empty() || seq.len() > self.k {
            return false;
        }
        match &self.interests {
            None => true,
            Some(lq) => seq.len() == 1 || lq.contains(seq),
        }
    }

    /// Lowers `q` to a physical plan against this index.
    pub fn plan(&self, q: &Cpq) -> Plan {
        plan_query(q, self.k, &|s| self.is_indexed(s))
    }

    /// Evaluates `q`, returning the normalized pair set (Algorithm 3).
    pub fn evaluate(&self, g: &Graph, q: &Cpq) -> Vec<Pair> {
        Executor::new(self, g).run(&self.plan(q))
    }

    /// Evaluates `q` with explicit executor ablation switches (see
    /// [`crate::exec::ExecOptions`]). Results are identical to
    /// [`CpqxIndex::evaluate`]; only the work performed differs.
    pub fn evaluate_with_options(
        &self,
        g: &Graph,
        q: &Cpq,
        options: crate::exec::ExecOptions,
    ) -> Vec<Pair> {
        Executor::with_options(self, g, options).run(&self.plan(q))
    }

    /// Evaluates `q` but stops at the first result (Fig. 7's
    /// first-answer measurements). Returns `None` for empty answers.
    pub fn evaluate_first(&self, g: &Graph, q: &Cpq) -> Option<Pair> {
        Executor::new(self, g).run_first(&self.plan(q))
    }

    /// Evaluates `q` and reports the execution work counters alongside the
    /// answers (EXPLAIN ANALYZE-style; Table III's pruning-power numbers
    /// are `classes_touched` here versus pair volume on the Path index).
    pub fn explain(&self, g: &Graph, q: &Cpq) -> (Vec<Pair>, crate::exec::ExecStats) {
        Executor::new(self, g).run_explained(&self.plan(q))
    }

    /// Number of classes with at least one pair (freshly built indexes have
    /// no empty classes; lazy maintenance can leave tombstones behind).
    pub fn live_class_count(&self) -> usize {
        self.classes.iter().flat_map(|ch| ch.pairs.iter()).filter(|p| !p.is_empty()).count()
    }

    /// Total allocated class slots, including tombstones.
    pub fn class_slots(&self) -> usize {
        self.class_count
    }

    /// `class_slots / baseline_classes` in O(1) — the fragmentation
    /// trigger serving layers poll after every write transaction (see
    /// [`Fragmentation::ratio`]; the full report is
    /// [`CpqxIndex::fragmentation`]). A zero baseline (index built from an
    /// empty graph) reads as fresh: 1.0, never `class_slots` — the first
    /// lazy update re-baselines instead (see the module docs of
    /// `maintain`), so empty-seeded engines cannot thrash their
    /// auto-rebuild threshold.
    pub fn fragmentation_ratio(&self) -> f64 {
        if self.frag.baseline_classes == 0 {
            return 1.0;
        }
        self.class_count as f64 / self.frag.baseline_classes as f64
    }

    /// Class count of the full build this index descends from — the
    /// denominator of [`CpqxIndex::fragmentation_ratio`], in O(1).
    pub fn baseline_class_count(&self) -> usize {
        self.frag.baseline_classes
    }

    /// The full fragmentation report (O(classes): counts live classes).
    pub fn fragmentation(&self) -> Fragmentation {
        Fragmentation {
            baseline_classes: self.frag.baseline_classes,
            class_slots: self.class_slots(),
            live_classes: self.live_class_count(),
            fresh_classes: self.frag.fresh_classes,
            refreshed_pairs: self.frag.refreshed_pairs,
        }
    }

    /// Number of indexed s-t pairs.
    pub fn pair_count(&self) -> usize {
        self.pair_count
    }

    /// Index statistics (sizes follow Thm. 4.2's accounting; see
    /// [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        let postings: usize = self.il2c.values().map(|v| v.len()).sum();
        let pairs = self.pair_count();
        // γ = average |L≤k(v,u)| over pairs = Σ_c |seqs(c)|·|P(c)| / |P≤k|.
        let weighted: usize = self
            .classes
            .iter()
            .flat_map(|ch| ch.seqs.iter().zip(&ch.pairs))
            .map(|(s, p)| s.len() * p.len())
            .sum();
        let gamma = if pairs == 0 { 0.0 } else { weighted as f64 / pairs as f64 };
        // Packed (CSR-equivalent) accounting: keys + entries + offsets.
        // Container headers are an implementation detail, so sizes stay
        // comparable across index designs (Table IV's IS).
        let seq_bytes = std::mem::size_of::<LabelSeq>();
        let il2c_bytes: usize = self
            .il2c
            .values()
            .map(|v| seq_bytes + v.len() * std::mem::size_of::<ClassId>() + 4)
            .sum();
        let ic2p_bytes: usize = pairs * std::mem::size_of::<Pair>() + (self.class_count + 1) * 4;
        let core_bytes = il2c_bytes + ic2p_bytes;
        let class_seq_bytes: usize = self
            .classes
            .iter()
            .flat_map(|ch| ch.seqs.iter())
            .map(|v| v.len() * seq_bytes + 4)
            .sum();
        let p2c_bytes = pairs * (std::mem::size_of::<Pair>() + std::mem::size_of::<ClassId>());
        IndexStats {
            k: self.k,
            classes: self.live_class_count(),
            pairs,
            sequences: self.il2c.len(),
            postings,
            gamma,
            core_bytes,
            total_bytes: core_bytes + class_seq_bytes + p2c_bytes + self.class_count,
        }
    }

    /// Core index size in bytes (`Il2c` + `Ic2p`), the Table IV quantity.
    pub fn size_bytes(&self) -> usize {
        self.stats().core_bytes
    }

    /// Structural-sharing report against the index this one was cloned
    /// from, covering the two chunked stores (class chunks + p2c shards):
    /// per position, whether the `Arc` is still shared with `before` or
    /// was copied / newly created. The engine sums this into its
    /// `cow_chunks_copied` / `cow_chunks_shared` gauges after every write
    /// transaction.
    pub fn cow_diff(&self, before: &CpqxIndex) -> CowDiff {
        let mut diff = CowDiff::default();
        diff.record_arcs(&self.classes, &before.classes);
        diff.record_arcs(&self.p2c, &before.p2c);
        diff
    }

    /// A clone that shares **no** chunk, shard or posting with `self` —
    /// every store is copied up front. This reproduces the cost of the
    /// pre-COW full-copy write path for benchmarking and regression
    /// comparison (the engine's `deep_clone_writes` option); ordinary code
    /// should use the cheap structural-sharing `Clone`.
    pub fn deep_clone(&self) -> CpqxIndex {
        let mut idx = self.clone();
        for c in &mut idx.classes {
            *c = Arc::new(ClassChunk::clone(c));
        }
        for s in &mut idx.p2c {
            *s = Arc::new(HashMap::clone(s));
        }
        for v in idx.il2c.values_mut() {
            *v = Arc::new(Vec::clone(v));
        }
        idx
    }

    /// Number of copy-on-write units backing this index (class chunks +
    /// p2c shards).
    pub fn chunk_count(&self) -> usize {
        self.classes.len() + self.p2c.len()
    }

    // ------------------------------------------- persistence surface --

    /// Maximum classes per class chunk — persistence readers use this to
    /// map class-id ranges onto chunk records (chunk `i` holds classes
    /// `i·span .. i·span + len`).
    pub fn class_chunk_span() -> usize {
        CLASS_CHUNK
    }

    /// Number of class chunks backing the partition store. Persistence
    /// surface: snapshot writers emit one record per class chunk (the
    /// p2c shards and `Il2c` postings are derived state, rebuilt on
    /// load).
    pub fn class_chunk_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes in the `i`-th class chunk (all chunks but the
    /// last hold exactly [`CpqxIndex::class_chunk_span`]).
    pub fn class_chunk_len(&self, i: usize) -> usize {
        self.classes[i].loops.len()
    }

    /// Whether the `i`-th class chunk is physically shared
    /// (`Arc::ptr_eq`) with the chunk at the same position of `before`.
    ///
    /// The incremental-snapshot change detector: mutation always goes
    /// through `Arc::make_mut`, so while `before` (the last-persisted
    /// state) is kept alive, pointer equality proves the chunk's classes
    /// are byte-identical (same rule as [`CpqxIndex::cow_diff`]).
    pub fn class_chunk_shared_with(&self, before: &CpqxIndex, i: usize) -> bool {
        matches!(before.classes.get(i), Some(b) if Arc::ptr_eq(b, &self.classes[i]))
    }
}

impl SeqProbe for CpqxIndex {
    fn seq_nonempty(&self, seq: &LabelSeq) -> bool {
        if self.is_indexed(seq) {
            self.lookup(seq).iter().any(|&c| !self.class_pairs(c).is_empty())
        } else {
            // Conservative: split into indexed chunks and check each piece.
            // (Non-empty pieces do not guarantee a non-empty whole, but the
            // workload filter only needs length-≤2 windows, which are always
            // indexed.)
            (0..seq.len()).all(|i| {
                let s = LabelSeq::single(seq.get(i));
                self.lookup(&s).iter().any(|&c| !self.class_pairs(c).is_empty())
            })
        }
    }
}

impl std::fmt::Debug for CpqxIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct(if self.is_interest_aware() { "iaCPQx" } else { "CPQx" })
            .field("k", &self.k)
            .field("classes", &self.live_class_count())
            .field("pairs", &self.pair_count())
            .finish()
    }
}
