//! Binary persistence for the index.
//!
//! A production deployment builds the index once (Table IV's IT is minutes
//! to hours at paper scale) and reloads it across restarts. The format
//! stores the partition — per class: loop flag, sequence set, pair list —
//! plus the mode header; `Il2c` and the pair→class inverted index are
//! reconstructed on load, so the file holds each fact exactly once.
//!
//! Layout (little-endian): magic `CPQX`, format version, `k`, mode byte
//! (full / interest-aware + interest list), class count, then the classes.

use crate::bisim::ClassId;
use crate::index::CpqxIndex;
use cpqx_graph::{ExtLabel, LabelSeq, Pair};
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"CPQX";
const VERSION: u32 = 1;

/// Errors while reading a persisted index.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream does not start with the `CPQX` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid payload.
    Corrupt(&'static str),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not a CPQx index file"),
            LoadError::BadVersion(v) => write!(f, "unsupported index format version {v}"),
            LoadError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn write_u32(w: &mut impl Write, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u64(w: &mut impl Write, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_seq(w: &mut impl Write, s: &LabelSeq) -> std::io::Result<()> {
    w.write_all(&[s.len() as u8])?;
    for l in s.iter() {
        w.write_all(&l.0.to_le_bytes())?;
    }
    Ok(())
}

fn read_u8(r: &mut impl Read) -> Result<u8, LoadError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u16(r: &mut impl Read) -> Result<u16, LoadError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> Result<u32, LoadError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, LoadError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_seq(r: &mut impl Read) -> Result<LabelSeq, LoadError> {
    let len = read_u8(r)? as usize;
    if len > cpqx_graph::MAX_SEQ_LEN {
        return Err(LoadError::Corrupt("label sequence too long"));
    }
    let mut s = LabelSeq::empty();
    for _ in 0..len {
        s = s.appended(ExtLabel(read_u16(r)?));
    }
    Ok(s)
}

impl CpqxIndex {
    /// Serializes the index to a writer.
    pub fn save(&self, mut w: impl Write) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(&mut w, VERSION)?;
        write_u32(&mut w, self.k as u32)?;
        match &self.interests {
            None => w.write_all(&[0u8])?,
            Some(lq) => {
                w.write_all(&[1u8])?;
                write_u32(&mut w, lq.len() as u32)?;
                for s in lq {
                    write_seq(&mut w, s)?;
                }
            }
        }
        write_u32(&mut w, self.class_slots() as u32)?;
        for c in 0..self.class_slots() as ClassId {
            w.write_all(&[self.class_is_loop(c) as u8])?;
            write_u32(&mut w, self.class_sequences(c).len() as u32)?;
            for s in self.class_sequences(c) {
                write_seq(&mut w, s)?;
            }
            write_u32(&mut w, self.class_pairs(c).len() as u32)?;
            for p in self.class_pairs(c) {
                write_u64(&mut w, p.0)?;
            }
        }
        Ok(())
    }

    /// Loads an index written by [`CpqxIndex::save`], reconstructing the
    /// derived structures (`Il2c`, pair→class).
    pub fn load(mut r: impl Read) -> Result<Self, LoadError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(LoadError::BadVersion(version));
        }
        let k = read_u32(&mut r)? as usize;
        if k == 0 || k > cpqx_graph::MAX_SEQ_LEN {
            return Err(LoadError::Corrupt("k out of range"));
        }
        let interests = match read_u8(&mut r)? {
            0 => None,
            1 => {
                let n = read_u32(&mut r)? as usize;
                let mut lq = BTreeSet::new();
                for _ in 0..n {
                    lq.insert(read_seq(&mut r)?);
                }
                Some(lq)
            }
            _ => return Err(LoadError::Corrupt("bad mode byte")),
        };
        let nc = read_u32(&mut r)? as usize;
        // A loaded index starts a fresh fragmentation epoch: the file
        // format stores only the Def. 4.3 structures, so the loaded class
        // count becomes the new baseline. The derived stores (`Il2c`,
        // pair → class) rebuild through the index's chunked-store
        // primitives.
        let mut idx = CpqxIndex {
            k,
            interests,
            il2c: HashMap::new(),
            classes: Vec::new(),
            class_count: 0,
            p2c: Vec::new(),
            pair_count: 0,
            frag: crate::index::FragCounters { baseline_classes: nc, ..Default::default() },
        };
        for c in 0..nc as ClassId {
            let is_loop = match read_u8(&mut r)? {
                0 => false,
                1 => true,
                _ => return Err(LoadError::Corrupt("bad loop flag")),
            };
            let ns = read_u32(&mut r)? as usize;
            let mut seqs = Vec::with_capacity(ns);
            for _ in 0..ns {
                let s = read_seq(&mut r)?;
                if s.is_empty() || s.len() > k {
                    return Err(LoadError::Corrupt("class sequence length out of range"));
                }
                seqs.push(s);
            }
            if seqs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(LoadError::Corrupt("class sequences not sorted"));
            }
            let np = read_u32(&mut r)? as usize;
            let mut pairs = Vec::with_capacity(np);
            for _ in 0..np {
                pairs.push(Pair(read_u64(&mut r)?));
            }
            if pairs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(LoadError::Corrupt("class pairs not sorted"));
            }
            for p in &pairs {
                if p.is_loop() != is_loop {
                    return Err(LoadError::Corrupt("pair cyclicity disagrees with class flag"));
                }
                if idx.class_of(*p).is_some() {
                    return Err(LoadError::Corrupt("pair assigned to two classes"));
                }
                idx.p2c_insert(*p, c);
            }
            for s in &seqs {
                idx.il2c_push(*s, c);
            }
            let created = idx.push_class(is_loop, seqs);
            debug_assert_eq!(created, c);
            let (chunk, off) = idx.class_slot_mut(c);
            chunk.pairs[off] = pairs;
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    fn roundtrip(idx: &CpqxIndex) -> CpqxIndex {
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        CpqxIndex::load(std::io::Cursor::new(&buf)).unwrap()
    }

    #[test]
    fn full_index_roundtrip() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let loaded = roundtrip(&idx);
        assert_eq!(loaded.k(), idx.k());
        assert_eq!(loaded.pair_count(), idx.pair_count());
        assert_eq!(loaded.class_slots(), idx.class_slots());
        for text in ["(f . f) & f^-1", "f . v", "(v . v^-1) & id"] {
            let q = parse_cpq(text, &g).unwrap();
            assert_eq!(loaded.evaluate(&g, &q), idx.evaluate(&g, &q), "{text}");
        }
    }

    #[test]
    fn interest_aware_roundtrip_keeps_mode() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let seq = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
        let idx = CpqxIndex::build_interest_aware(&g, 2, [seq]);
        let loaded = roundtrip(&idx);
        assert!(loaded.is_interest_aware());
        assert!(loaded.is_indexed(&seq));
        assert_eq!(loaded.interests(), idx.interests());
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(loaded.evaluate(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn loaded_index_is_maintainable() {
        let mut g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut loaded = roundtrip(&idx);
        let (sue, joe) = (g.vertex_named("sue").unwrap(), g.vertex_named("joe").unwrap());
        let f = g.label_named("f").unwrap();
        loaded.delete_edge(&mut g, sue, joe, f);
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(loaded.evaluate(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = CpqxIndex::load(std::io::Cursor::new(b"NOPE....")).unwrap_err();
        assert!(matches!(err, LoadError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        for cut in [3usize, 9, 16, buf.len() / 2, buf.len() - 1] {
            let err = CpqxIndex::load(std::io::Cursor::new(&buf[..cut]));
            assert!(err.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn bitflip_in_pair_detected_or_benign() {
        // Flipping a pair byte either corrupts sortedness/cyclicity (error)
        // or produces a structurally valid different index — never a panic.
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        for i in (buf.len().saturating_sub(64)..buf.len()).step_by(7) {
            let mut corrupted = buf.clone();
            corrupted[i] ^= 0xFF;
            let _ = CpqxIndex::load(std::io::Cursor::new(&corrupted));
        }
    }

    #[test]
    fn version_mismatch_reported() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        buf[4] = 0xFF; // mangle version
        let err = CpqxIndex::load(std::io::Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, LoadError::BadVersion(_)));
    }
}
