//! Binary persistence for the index.
//!
//! A production deployment builds the index once (Table IV's IT is minutes
//! to hours at paper scale) and reloads it across restarts. The format
//! stores the partition — per class: loop flag, sequence set, pair list —
//! plus the mode header; `Il2c` and the pair→class inverted index are
//! reconstructed on load, so the file holds each fact exactly once.
//!
//! Layout (little-endian): magic `CPQX`, format version, `k`, mode byte
//! (full / interest-aware + interest list), class count, then the classes.

use crate::bisim::ClassId;
use crate::index::CpqxIndex;
use cpqx_graph::{ExtLabel, LabelSeq, Pair};
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"CPQX";
const VERSION: u32 = 1;

/// Errors while reading a persisted index (or any of the store's framed
/// files, which reuse this type so corruption reports look the same
/// everywhere): every corruption variant pinpoints the byte offset, so a
/// damaged file is diagnosable without a hex dump.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure (anything but a clean end-of-stream, which
    /// reports as [`LoadError::Truncated`]).
    Io(std::io::Error),
    /// The stream does not start with the `CPQX` magic.
    BadMagic,
    /// Format-version mismatch: the file declares `found`, this build
    /// reads `expected`.
    BadVersion {
        /// Version number the file declares.
        found: u32,
        /// Version number this build understands.
        expected: u32,
    },
    /// The stream ended in the middle of a field.
    Truncated {
        /// Byte offset at which the stream ran out.
        offset: u64,
    },
    /// Structurally invalid payload.
    Corrupt {
        /// Byte offset of the offending field.
        offset: u64,
        /// What was wrong with it.
        what: &'static str,
    },
    /// A checksummed record failed verification (used by the framed
    /// record formats in `cpqx-store`; the version-1 index stream itself
    /// carries no checksums).
    Checksum {
        /// Byte offset of the record whose checksum failed.
        offset: u64,
        /// Checksum stored in the file.
        expected: u32,
        /// Checksum computed over the payload actually read.
        actual: u32,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not a CPQx index file"),
            LoadError::BadVersion { found, expected } => {
                write!(f, "unsupported format version {found} (this build reads {expected})")
            }
            LoadError::Truncated { offset } => {
                write!(f, "truncated at byte {offset}")
            }
            LoadError::Corrupt { offset, what } => {
                write!(f, "corrupt at byte {offset}: {what}")
            }
            LoadError::Checksum { offset, expected, actual } => {
                write!(
                    f,
                    "checksum mismatch for record at byte {offset}: \
                     stored {expected:#010x}, computed {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Reader adapter that counts consumed bytes, so every decode error can
/// name the offset it happened at.
struct Counted<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> Counted<R> {
    fn new(inner: R) -> Self {
        Counted { inner, offset: 0 }
    }

    /// Reads exactly `buf.len()` bytes; a clean end-of-stream reports as
    /// [`LoadError::Truncated`] at the current offset.
    fn fill(&mut self, buf: &mut [u8]) -> Result<(), LoadError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.offset += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(LoadError::Truncated { offset: self.offset })
            }
            Err(e) => Err(LoadError::Io(e)),
        }
    }
}

fn write_u32(w: &mut impl Write, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_u64(w: &mut impl Write, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn write_seq(w: &mut impl Write, s: &LabelSeq) -> std::io::Result<()> {
    w.write_all(&[s.len() as u8])?;
    for l in s.iter() {
        w.write_all(&l.0.to_le_bytes())?;
    }
    Ok(())
}

fn read_u8<R: Read>(r: &mut Counted<R>) -> Result<u8, LoadError> {
    let mut b = [0u8; 1];
    r.fill(&mut b)?;
    Ok(b[0])
}

fn read_u16<R: Read>(r: &mut Counted<R>) -> Result<u16, LoadError> {
    let mut b = [0u8; 2];
    r.fill(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut Counted<R>) -> Result<u32, LoadError> {
    let mut b = [0u8; 4];
    r.fill(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut Counted<R>) -> Result<u64, LoadError> {
    let mut b = [0u8; 8];
    r.fill(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_seq<R: Read>(r: &mut Counted<R>) -> Result<LabelSeq, LoadError> {
    let at = r.offset;
    let len = read_u8(r)? as usize;
    if len > cpqx_graph::MAX_SEQ_LEN {
        return Err(LoadError::Corrupt { offset: at, what: "label sequence too long" });
    }
    let mut s = LabelSeq::empty();
    for _ in 0..len {
        s = s.appended(ExtLabel(read_u16(r)?));
    }
    Ok(s)
}

/// One persisted class: loop flag, sorted `L≤k` sequence set, sorted
/// pair row — the unit of both the whole-index stream and the
/// chunk-per-record snapshot layout.
pub type ClassRecord = (bool, Vec<LabelSeq>, Vec<Pair>);

fn write_class(
    w: &mut impl Write,
    is_loop: bool,
    seqs: &[LabelSeq],
    pairs: &[Pair],
) -> std::io::Result<()> {
    w.write_all(&[is_loop as u8])?;
    write_u32(w, seqs.len() as u32)?;
    for s in seqs {
        write_seq(w, s)?;
    }
    write_u32(w, pairs.len() as u32)?;
    for p in pairs {
        write_u64(w, p.0)?;
    }
    Ok(())
}

/// Reads and structurally validates one class body (the per-class layout
/// shared by [`CpqxIndex::load`] and [`CpqxIndex::load_class_chunk`]).
fn read_class<R: Read>(r: &mut Counted<R>, k: usize) -> Result<ClassRecord, LoadError> {
    let class_at = r.offset;
    let is_loop = match read_u8(r)? {
        0 => false,
        1 => true,
        _ => return Err(LoadError::Corrupt { offset: class_at, what: "bad loop flag" }),
    };
    let ns = read_u32(r)? as usize;
    let mut seqs = Vec::with_capacity(ns);
    for _ in 0..ns {
        let at = r.offset;
        let s = read_seq(r)?;
        if s.is_empty() || s.len() > k {
            return Err(LoadError::Corrupt {
                offset: at,
                what: "class sequence length out of range",
            });
        }
        seqs.push(s);
    }
    if seqs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(LoadError::Corrupt { offset: class_at, what: "class sequences not sorted" });
    }
    let pairs_at = r.offset;
    let np = read_u32(r)? as usize;
    let mut pairs = Vec::with_capacity(np);
    for _ in 0..np {
        pairs.push(Pair(read_u64(r)?));
    }
    if pairs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(LoadError::Corrupt { offset: pairs_at, what: "class pairs not sorted" });
    }
    if pairs.iter().any(|p| p.is_loop() != is_loop) {
        return Err(LoadError::Corrupt {
            offset: pairs_at,
            what: "pair cyclicity disagrees with class flag",
        });
    }
    Ok((is_loop, seqs, pairs))
}

impl CpqxIndex {
    /// Serializes the index to a writer.
    pub fn save(&self, mut w: impl Write) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(&mut w, VERSION)?;
        write_u32(&mut w, self.k as u32)?;
        match &self.interests {
            None => w.write_all(&[0u8])?,
            Some(lq) => {
                w.write_all(&[1u8])?;
                write_u32(&mut w, lq.len() as u32)?;
                for s in lq {
                    write_seq(&mut w, s)?;
                }
            }
        }
        write_u32(&mut w, self.class_slots() as u32)?;
        for c in 0..self.class_slots() as ClassId {
            write_class(
                &mut w,
                self.class_is_loop(c),
                self.class_sequences(c),
                self.class_pairs(c),
            )?;
        }
        Ok(())
    }

    /// Serializes the classes of one class chunk (`[count: u32]` then
    /// `count` class bodies in [`CpqxIndex::save`]'s per-class layout) —
    /// the payload of a snapshot's index-chunk record. Chunk `i` covers
    /// classes `i · span .. i · span + len` (see
    /// [`CpqxIndex::class_chunk_span`]).
    pub fn save_class_chunk(&self, i: usize, mut w: impl Write) -> std::io::Result<()> {
        let span = Self::class_chunk_span();
        let len = self.class_chunk_len(i);
        write_u32(&mut w, len as u32)?;
        for off in 0..len {
            let c = (i * span + off) as ClassId;
            write_class(
                &mut w,
                self.class_is_loop(c),
                self.class_sequences(c),
                self.class_pairs(c),
            )?;
        }
        Ok(())
    }

    /// Decodes one chunk written by [`CpqxIndex::save_class_chunk`],
    /// validating each class body structurally. Offsets in errors are
    /// relative to the chunk payload; callers add the record's file
    /// position.
    pub fn load_class_chunk(k: usize, r: impl Read) -> Result<Vec<ClassRecord>, LoadError> {
        let mut r = Counted::new(r);
        let at = r.offset;
        let n = read_u32(&mut r)? as usize;
        if n > Self::class_chunk_span() {
            return Err(LoadError::Corrupt { offset: at, what: "class chunk over-full" });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read_class(&mut r, k)?);
        }
        Ok(out)
    }

    /// Reassembles an index from per-chunk class records (the inverse of
    /// [`CpqxIndex::save_class_chunk`] over all chunks), rebuilding the
    /// derived structures (`Il2c`, pair → class) exactly as
    /// [`CpqxIndex::load`] does. Like a freshly loaded index, the result
    /// starts a new fragmentation epoch: the restored class count is the
    /// baseline.
    ///
    /// Every chunk but the last must hold exactly
    /// [`CpqxIndex::class_chunk_span`] classes, so the rebuilt chunk
    /// boundaries bit-match the persisted index and incremental
    /// snapshotting stays positionally aligned across restarts.
    pub fn from_class_records(
        k: usize,
        interests: Option<BTreeSet<LabelSeq>>,
        chunks: Vec<Vec<ClassRecord>>,
    ) -> Result<Self, &'static str> {
        if k == 0 || k > cpqx_graph::MAX_SEQ_LEN {
            return Err("k out of range");
        }
        let span = Self::class_chunk_span();
        for (i, ch) in chunks.iter().enumerate() {
            let full = i + 1 < chunks.len();
            if full && ch.len() != span {
                return Err("non-terminal class chunk not full");
            }
            if !full && (ch.is_empty() || ch.len() > span) {
                return Err("terminal class chunk empty or over-full");
            }
        }
        let nc: usize = chunks.iter().map(Vec::len).sum();
        let mut idx = CpqxIndex {
            k,
            interests,
            il2c: HashMap::new(),
            classes: Vec::new(),
            class_count: 0,
            p2c: Vec::new(),
            pair_count: 0,
            frag: crate::index::FragCounters { baseline_classes: nc, ..Default::default() },
        };
        for (is_loop, seqs, pairs) in chunks.into_iter().flatten() {
            let c = idx.class_count as ClassId;
            for p in &pairs {
                if p.is_loop() != is_loop {
                    return Err("pair cyclicity disagrees with class flag");
                }
                if idx.class_of(*p).is_some() {
                    return Err("pair assigned to two classes");
                }
                idx.p2c_insert(*p, c);
            }
            for s in &seqs {
                idx.il2c_push(*s, c);
            }
            let created = idx.push_class(is_loop, seqs);
            debug_assert_eq!(created, c);
            let (chunk, off) = idx.class_slot_mut(c);
            chunk.pairs[off] = pairs;
        }
        Ok(idx)
    }

    /// Loads an index written by [`CpqxIndex::save`], reconstructing the
    /// derived structures (`Il2c`, pair→class).
    pub fn load(r: impl Read) -> Result<Self, LoadError> {
        let mut r = Counted::new(r);
        let mut magic = [0u8; 4];
        r.fill(&mut magic)?;
        if &magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(LoadError::BadVersion { found: version, expected: VERSION });
        }
        let at = r.offset;
        let k = read_u32(&mut r)? as usize;
        if k == 0 || k > cpqx_graph::MAX_SEQ_LEN {
            return Err(LoadError::Corrupt { offset: at, what: "k out of range" });
        }
        let mode_at = r.offset;
        let interests = match read_u8(&mut r)? {
            0 => None,
            1 => {
                let n = read_u32(&mut r)? as usize;
                let mut lq = BTreeSet::new();
                for _ in 0..n {
                    lq.insert(read_seq(&mut r)?);
                }
                Some(lq)
            }
            _ => return Err(LoadError::Corrupt { offset: mode_at, what: "bad mode byte" }),
        };
        let nc = read_u32(&mut r)? as usize;
        // A loaded index starts a fresh fragmentation epoch: the file
        // format stores only the Def. 4.3 structures, so the loaded class
        // count becomes the new baseline. The derived stores (`Il2c`,
        // pair → class) rebuild through the index's chunked-store
        // primitives.
        let mut idx = CpqxIndex {
            k,
            interests,
            il2c: HashMap::new(),
            classes: Vec::new(),
            class_count: 0,
            p2c: Vec::new(),
            pair_count: 0,
            frag: crate::index::FragCounters { baseline_classes: nc, ..Default::default() },
        };
        for c in 0..nc as ClassId {
            let class_at = r.offset;
            let (is_loop, seqs, pairs) = read_class(&mut r, k)?;
            for p in &pairs {
                if idx.class_of(*p).is_some() {
                    return Err(LoadError::Corrupt {
                        offset: class_at,
                        what: "pair assigned to two classes",
                    });
                }
                idx.p2c_insert(*p, c);
            }
            for s in &seqs {
                idx.il2c_push(*s, c);
            }
            let created = idx.push_class(is_loop, seqs);
            debug_assert_eq!(created, c);
            let (chunk, off) = idx.class_slot_mut(c);
            chunk.pairs[off] = pairs;
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    fn roundtrip(idx: &CpqxIndex) -> CpqxIndex {
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        CpqxIndex::load(std::io::Cursor::new(&buf)).unwrap()
    }

    #[test]
    fn full_index_roundtrip() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let loaded = roundtrip(&idx);
        assert_eq!(loaded.k(), idx.k());
        assert_eq!(loaded.pair_count(), idx.pair_count());
        assert_eq!(loaded.class_slots(), idx.class_slots());
        for text in ["(f . f) & f^-1", "f . v", "(v . v^-1) & id"] {
            let q = parse_cpq(text, &g).unwrap();
            assert_eq!(loaded.evaluate(&g, &q), idx.evaluate(&g, &q), "{text}");
        }
    }

    #[test]
    fn interest_aware_roundtrip_keeps_mode() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let seq = LabelSeq::from_slice(&[f.fwd(), f.fwd()]);
        let idx = CpqxIndex::build_interest_aware(&g, 2, [seq]);
        let loaded = roundtrip(&idx);
        assert!(loaded.is_interest_aware());
        assert!(loaded.is_indexed(&seq));
        assert_eq!(loaded.interests(), idx.interests());
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(loaded.evaluate(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn loaded_index_is_maintainable() {
        let mut g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut loaded = roundtrip(&idx);
        let (sue, joe) = (g.vertex_named("sue").unwrap(), g.vertex_named("joe").unwrap());
        let f = g.label_named("f").unwrap();
        loaded.delete_edge(&mut g, sue, joe, f);
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(loaded.evaluate(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = CpqxIndex::load(std::io::Cursor::new(b"NOPE....")).unwrap_err();
        assert!(matches!(err, LoadError::BadMagic));
    }

    /// Disassembles through the chunk-granular surface and reassembles.
    fn chunk_roundtrip(idx: &CpqxIndex) -> CpqxIndex {
        let chunks: Vec<_> = (0..idx.class_chunk_count())
            .map(|i| {
                let mut buf = Vec::new();
                idx.save_class_chunk(i, &mut buf).unwrap();
                CpqxIndex::load_class_chunk(idx.k(), std::io::Cursor::new(&buf)).unwrap()
            })
            .collect();
        CpqxIndex::from_class_records(idx.k(), idx.interests().cloned(), chunks).unwrap()
    }

    #[test]
    fn class_chunk_roundtrip_matches_whole_stream() {
        let g = generate::gex();
        for idx in [
            CpqxIndex::build(&g, 2),
            CpqxIndex::build_interest_aware(
                &g,
                2,
                [LabelSeq::from_slice(&[
                    g.label_named("f").unwrap().fwd(),
                    g.label_named("f").unwrap().fwd(),
                ])],
            ),
        ] {
            let rebuilt = chunk_roundtrip(&idx);
            assert_eq!(rebuilt.k(), idx.k());
            assert_eq!(rebuilt.pair_count(), idx.pair_count());
            assert_eq!(rebuilt.class_slots(), idx.class_slots());
            assert_eq!(rebuilt.class_chunk_count(), idx.class_chunk_count());
            assert_eq!(rebuilt.interests(), idx.interests());
            for c in 0..idx.class_slots() as u32 {
                assert_eq!(rebuilt.class_pairs(c), idx.class_pairs(c));
                assert_eq!(rebuilt.class_sequences(c), idx.class_sequences(c));
                assert_eq!(rebuilt.class_is_loop(c), idx.class_is_loop(c));
            }
            for text in ["(f . f) & f^-1", "f . v"] {
                let q = parse_cpq(text, &g).unwrap();
                assert_eq!(rebuilt.evaluate(&g, &q), idx.evaluate(&g, &q), "{text}");
            }
        }
    }

    #[test]
    fn class_chunk_loader_rejects_corruption() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save_class_chunk(0, &mut buf).unwrap();
        // Truncations never panic and report positions inside the payload.
        for cut in [0, 2, buf.len() / 2, buf.len() - 1] {
            let err =
                CpqxIndex::load_class_chunk(2, std::io::Cursor::new(&buf[..cut])).unwrap_err();
            match err {
                LoadError::Truncated { offset } | LoadError::Corrupt { offset, .. } => {
                    assert!(offset <= cut as u64)
                }
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
        // A pair assigned to two classes is caught on reassembly.
        let records = CpqxIndex::load_class_chunk(2, std::io::Cursor::new(&buf)).unwrap();
        let dup = records.iter().find(|r| !r.2.is_empty()).unwrap().clone();
        let mut chunks = vec![records];
        chunks[0].push(dup);
        assert!(chunks[0].len() <= CpqxIndex::class_chunk_span(), "gex stays in one chunk");
        assert!(CpqxIndex::from_class_records(2, None, chunks).is_err());
    }

    #[test]
    fn truncation_reported_with_offset() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        for cut in [3usize, 9, 16, buf.len() / 2, buf.len() - 1] {
            let err = CpqxIndex::load(std::io::Cursor::new(&buf[..cut])).unwrap_err();
            // A hand-truncated stream must be diagnosed as truncation at a
            // plausible offset — not as a panic or a generic I/O error.
            // (Very short cuts may also surface as a corrupt count field.)
            match err {
                LoadError::Truncated { offset } => {
                    assert!(offset <= cut as u64, "offset {offset} past cut {cut}")
                }
                LoadError::Corrupt { offset, .. } => {
                    assert!(offset <= cut as u64, "offset {offset} past cut {cut}")
                }
                other => panic!("truncation at {cut} reported as {other:?}"),
            }
        }
    }

    #[test]
    fn bitflip_in_pair_detected_or_benign() {
        // Flipping a pair byte either corrupts sortedness/cyclicity (error)
        // or produces a structurally valid different index — never a panic.
        // When it errors, the reported offset must lie within the file.
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        for i in (buf.len().saturating_sub(64)..buf.len()).step_by(7) {
            let mut corrupted = buf.clone();
            corrupted[i] ^= 0xFF;
            match CpqxIndex::load(std::io::Cursor::new(&corrupted)) {
                Ok(_) => {}
                Err(LoadError::Corrupt { offset, .. }) | Err(LoadError::Truncated { offset }) => {
                    assert!(offset <= buf.len() as u64, "offset {offset} out of file")
                }
                Err(other) => panic!("flip at {i} reported as {other:?}"),
            }
        }
    }

    #[test]
    fn bitflip_in_header_reports_field() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        // k lives at bytes 8..12; zeroing it must name that offset.
        let mut corrupted = buf.clone();
        corrupted[8..12].copy_from_slice(&[0; 4]);
        let err = CpqxIndex::load(std::io::Cursor::new(&corrupted)).unwrap_err();
        assert!(
            matches!(err, LoadError::Corrupt { offset: 8, what: "k out of range" }),
            "got {err:?}"
        );
        // The mode byte follows k; an invalid one names its own offset.
        let mut corrupted = buf.clone();
        corrupted[12] = 7;
        let err = CpqxIndex::load(std::io::Cursor::new(&corrupted)).unwrap_err();
        assert!(matches!(err, LoadError::Corrupt { offset: 12, what: "bad mode byte" }));
    }

    #[test]
    fn version_mismatch_reported() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        let mut buf = Vec::new();
        idx.save(&mut buf).unwrap();
        buf[4] = 0xFF; // mangle version
        let err = CpqxIndex::load(std::io::Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, LoadError::BadVersion { found: 0xFF, expected: 1 }), "got {err:?}");
    }

    #[test]
    fn error_display_carries_detail() {
        let e = LoadError::Checksum { offset: 96, expected: 0xDEAD_BEEF, actual: 0x0BAD_F00D };
        let s = e.to_string();
        assert!(s.contains("96") && s.contains("0xdeadbeef") && s.contains("0x0badf00d"), "{s}");
        let e = LoadError::Truncated { offset: 7 };
        assert!(e.to_string().contains("byte 7"));
    }
}
