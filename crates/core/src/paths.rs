//! Bounded path enumeration on the extended graph — the primitives behind
//! index maintenance (recomputing `L≤k(v,u)` for affected pairs and finding
//! the pairs an edge update can affect) and the partition-invariant tests.

use cpqx_graph::{ExtLabel, Graph, LabelSeq, Pair, VertexId};
use std::collections::HashMap;

/// Enumerates the sorted, distinct label sequences of all paths from `src`
/// to `dst` of length `1..=k` (i.e. `L≤k(src,dst)` minus the identity).
///
/// Meet-in-the-middle: forward walks of length ≤ ⌈k/2⌉ from `src` and
/// backward walks of length ≤ ⌊k/2⌋ from `dst` are joined on their meeting
/// vertex, so the cost is O(d^⌈k/2⌉) instead of the naive O(dᵏ) — the
/// difference between microseconds and seconds per affected pair on the
/// hub-heavy graphs of Table II.
pub fn label_seqs_between(g: &Graph, src: VertexId, dst: VertexId, k: usize) -> Vec<LabelSeq> {
    assert!((1..=cpqx_graph::MAX_SEQ_LEN).contains(&k));
    let h1 = k.div_ceil(2);
    let h2 = k / 2;
    // Forward prefixes: (meeting vertex, prefix length) → sequences.
    let mut fwd: HashMap<(VertexId, u8), Vec<LabelSeq>> = HashMap::new();
    collect_walks(g, src, h1, &mut fwd);
    // Backward suffixes from dst (walked on the extended graph, then
    // reversed+inverted back into forward form).
    let mut bwd_raw: HashMap<(VertexId, u8), Vec<LabelSeq>> = HashMap::new();
    collect_walks(g, dst, h2, &mut bwd_raw);

    let mut out = Vec::new();
    for (&(mid, p), prefixes) in &fwd {
        for s in 0..=(h2 as u8) {
            let j = p as usize + s as usize;
            if j == 0 || j > k {
                continue;
            }
            // Each path of length j is counted once: split at p = ⌈j/2⌉.
            if p as usize != j.div_ceil(2) {
                continue;
            }
            let Some(suffixes) = bwd_raw.get(&(mid, s)) else {
                continue;
            };
            for prefix in prefixes {
                for suffix in suffixes {
                    out.push(prefix.concat(&suffix.reversed_inverse()));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// All walks of length `0..=depth` from `start`, grouped by
/// `(end vertex, length)`.
fn collect_walks(
    g: &Graph,
    start: VertexId,
    depth: usize,
    out: &mut HashMap<(VertexId, u8), Vec<LabelSeq>>,
) {
    out.entry((start, 0)).or_default().push(LabelSeq::empty());
    let mut cur = LabelSeq::empty();
    walk_rec(g, start, depth, 0, &mut cur, out);
}

fn walk_rec(
    g: &Graph,
    v: VertexId,
    depth: usize,
    len: u8,
    cur: &mut LabelSeq,
    out: &mut HashMap<(VertexId, u8), Vec<LabelSeq>>,
) {
    if (len as usize) == depth {
        return;
    }
    for &(l, t) in g.adjacency(v) {
        let mut next = cur.appended(ExtLabel(l));
        out.entry((t, len + 1)).or_default().push(next);
        std::mem::swap(cur, &mut next);
        walk_rec(g, t, depth, len + 1, cur, out);
        std::mem::swap(cur, &mut next);
    }
}

/// Reference implementation of [`label_seqs_between`] — straightforward
/// depth-first enumeration. Kept for differential testing.
pub fn label_seqs_between_naive(
    g: &Graph,
    src: VertexId,
    dst: VertexId,
    k: usize,
) -> Vec<LabelSeq> {
    let mut out = Vec::new();
    let mut cur = LabelSeq::empty();
    naive_rec(g, src, dst, k, &mut cur, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn naive_rec(
    g: &Graph,
    v: VertexId,
    dst: VertexId,
    remaining: usize,
    cur: &mut LabelSeq,
    out: &mut Vec<LabelSeq>,
) {
    if remaining == 0 {
        return;
    }
    for &(l, t) in g.adjacency(v) {
        let mut next = cur.appended(ExtLabel(l));
        if t == dst {
            out.push(next);
        }
        if remaining > 1 {
            std::mem::swap(cur, &mut next);
            naive_rec(g, t, dst, remaining - 1, cur, out);
            std::mem::swap(cur, &mut next);
        }
    }
}

/// Vertices within distance `radius` (over extended edges, any label) of
/// `seed`, bucketed by exact BFS distance: `buckets[d]` holds the vertices
/// at distance `d`.
pub fn distance_buckets(g: &Graph, seed: VertexId, radius: usize) -> Vec<Vec<VertexId>> {
    let mut dist: HashMap<VertexId, u8> = HashMap::new();
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![seed]];
    dist.insert(seed, 0);
    for d in 1..=radius {
        let mut next = Vec::new();
        for &v in &buckets[d - 1] {
            for &(_, t) in g.adjacency(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(t) {
                    e.insert(d as u8);
                    next.push(t);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        buckets.push(next);
    }
    buckets
}

/// Vertices within distance `radius` of any seed, with minimum distances
/// (the merged ball of Sec. IV-E's breadth-first search).
pub fn bounded_ball(g: &Graph, seeds: &[VertexId], radius: usize) -> Vec<(VertexId, u8)> {
    let mut dist: HashMap<VertexId, u8> = HashMap::new();
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in seeds {
        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(s) {
            e.insert(0);
            frontier.push(s);
        }
    }
    for d in 1..=radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for &(_, t) in g.adjacency(v) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(t) {
                    e.insert(d as u8);
                    next.push(t);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut out: Vec<(VertexId, u8)> = dist.into_iter().collect();
    out.sort_unstable();
    out
}

/// All pairs whose `L≤k` can change when an edge between `v` and `u` is
/// inserted or deleted (Sec. IV-E's `Pu`, over-approximated):
///
/// * **single edge use**: a path `x →(j₁)→ a –edge→ b →(j₂)→ y` with
///   `{a,b} = {v,u}` and `j₁ + 1 + j₂ ≤ k` — the distance-bucketed cross
///   products below, O(d) pairs for k = 2 instead of the O(d²) a merged
///   ball-product would enumerate;
/// * **multiple edge uses**: both legs must then fit in `k − 2` steps, a
///   tiny merged-ball product.
pub fn affected_pairs(g: &Graph, v: VertexId, u: VertexId, k: usize) -> Vec<Pair> {
    let bv = distance_buckets(g, v, k - 1);
    let bu = distance_buckets(g, u, k - 1);
    let mut out = Vec::new();
    for (j1, bucket_v) in bv.iter().enumerate() {
        for (j2, bucket_u) in bu.iter().enumerate() {
            if j1 + 1 + j2 > k {
                continue;
            }
            for &x in bucket_v {
                for &y in bucket_u {
                    // Through v→u and through the inverse edge u→v.
                    out.push(Pair::new(x, y));
                    out.push(Pair::new(y, x));
                }
            }
        }
    }
    if k >= 2 {
        // Paths using the edge more than once: ≥ 2 uses cost ≥ 2 steps, so
        // the legs fit in k − 2.
        let merged = bounded_ball(g, &[v, u], k - 2);
        for &(x, dx) in &merged {
            for &(y, dy) in &merged {
                if (dx as usize) + (dy as usize) <= k - 2 {
                    out.push(Pair::new(x, y));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;

    #[test]
    fn seqs_on_a_path() {
        let g = generate::labeled_path(&["a", "b"]);
        let (v0, v2) = (0, 2);
        let seqs = label_seqs_between(&g, v0, v2, 2);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].len(), 2);
        // Within k = 1 there is no path.
        assert!(label_seqs_between(&g, v0, v2, 1).is_empty());
    }

    #[test]
    fn seqs_include_inverse_steps() {
        // a: 0→1, so 1→0 via a⁻¹; 0→1→0 is ⟨a, a⁻¹⟩.
        let g = generate::labeled_path(&["a"]);
        let seqs = label_seqs_between(&g, 0, 0, 2);
        assert_eq!(seqs.len(), 1);
        let s = seqs[0];
        assert_eq!(s.get(0).base(), s.get(1).base());
        assert_ne!(s.get(0).is_inverse(), s.get(1).is_inverse());
    }

    #[test]
    fn gex_triad_seqs() {
        let g = generate::gex();
        let (joe, sue) = (g.vertex_named("joe").unwrap(), g.vertex_named("sue").unwrap());
        let f = g.label_named("f").unwrap();
        let seqs = label_seqs_between(&g, joe, sue, 2);
        // Fig. 3: L≤2(joe, sue) = {⟨f⁻¹⟩, ⟨f,f⟩, ⟨v,v⁻¹⟩}.
        assert_eq!(seqs.len(), 3);
        assert!(seqs.contains(&LabelSeq::single(f.inv())));
        assert!(seqs.contains(&LabelSeq::from_slice(&[f.fwd(), f.fwd()])));
    }

    #[test]
    fn mitm_matches_naive_enumeration() {
        for seed in 0..4u64 {
            let cfg = generate::RandomGraphConfig::social(30, 140, 3, seed);
            let g = generate::random_graph(&cfg);
            for k in 1..=4usize {
                for v in (0..g.vertex_count()).step_by(7) {
                    for u in (0..g.vertex_count()).step_by(5) {
                        assert_eq!(
                            label_seqs_between(&g, v, u, k),
                            label_seqs_between_naive(&g, v, u, k),
                            "seed {seed} k {k} pair ({v},{u})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ball_distances() {
        let g = generate::labeled_path(&["a", "a", "a", "a"]);
        let ball = bounded_ball(&g, &[2], 1);
        // Vertex 2 plus both neighbours (undirected via inverse edges).
        assert_eq!(ball, vec![(1, 1), (2, 0), (3, 1)]);
        let ball2 = bounded_ball(&g, &[2], 2);
        assert_eq!(ball2.len(), 5);
        let ball0 = bounded_ball(&g, &[2], 0);
        assert_eq!(ball0, vec![(2, 0)]);
    }

    #[test]
    fn ball_merges_seeds() {
        let g = generate::labeled_path(&["a", "a", "a"]);
        let ball = bounded_ball(&g, &[0, 3], 1);
        let d: std::collections::HashMap<_, _> = ball.into_iter().collect();
        assert_eq!(d[&0], 0);
        assert_eq!(d[&3], 0);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&2], 1);
    }

    #[test]
    fn buckets_match_ball() {
        let g = generate::gex();
        let v = g.vertex_named("ada").unwrap();
        let buckets = distance_buckets(&g, v, 2);
        let ball = bounded_ball(&g, &[v], 2);
        let flat: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(flat, ball.len());
        for (d, bucket) in buckets.iter().enumerate() {
            for x in bucket {
                assert!(ball.contains(&(*x, d as u8)));
            }
        }
    }

    #[test]
    fn affected_pairs_cover_endpoints_and_respect_radius() {
        let g = generate::labeled_path(&["a", "a", "a", "a"]);
        let aff = affected_pairs(&g, 2, 3, 2);
        assert!(aff.contains(&Pair::new(2, 3)));
        assert!(aff.contains(&Pair::new(3, 2)));
        assert!(aff.contains(&Pair::new(1, 3)));
        // Vertex 0 is ≥ 2 steps from both endpoints: unaffected at k = 2.
        assert!(!aff.iter().any(|p| p.src() == 0 || p.dst() == 0));
    }

    /// Soundness: every pair whose L≤k actually changes under an edge flip
    /// is in the candidate set.
    #[test]
    fn affected_pairs_are_sound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for seed in 0..3u64 {
            let cfg = generate::RandomGraphConfig::social(24, 90, 2, seed);
            let mut g = generate::random_graph(&cfg);
            for k in 1..=3usize {
                for _ in 0..6 {
                    let v = rng.gen_range(0..g.vertex_count());
                    let u = rng.gen_range(0..g.vertex_count());
                    let l = cpqx_graph::Label(rng.gen_range(0..g.base_label_count()));
                    // Snapshot, flip the edge, compare all pairs.
                    let before: Vec<Vec<LabelSeq>> = (0..g.vertex_count())
                        .flat_map(|x| (0..g.vertex_count()).map(move |y| (x, y)))
                        .map(|(x, y)| label_seqs_between(&g, x, y, k))
                        .collect();
                    let inserted = g.insert_edge(v, u, l);
                    if !inserted {
                        g.remove_edge(v, u, l);
                    }
                    let candidates = affected_pairs(&g, v, u, k);
                    let n = g.vertex_count();
                    for x in 0..n {
                        for y in 0..n {
                            let after = label_seqs_between(&g, x, y, k);
                            if after != before[(x * n + y) as usize] {
                                assert!(
                                    candidates.binary_search(&Pair::new(x, y)).is_ok(),
                                    "changed pair ({x},{y}) missing from candidates (k={k})"
                                );
                            }
                        }
                    }
                    // Restore.
                    if inserted {
                        g.remove_edge(v, u, l);
                    } else {
                        g.insert_edge(v, u, l);
                    }
                }
            }
        }
    }
}
