//! Query processing with the index — the paper's Algorithms 3 and 4.
//!
//! Intermediate results are either sorted **class-id sets** or normalized
//! **pair sets**. The executor keeps results at the class level as long as
//! possible: LOOKUP returns class ids; CONJUNCTION of two class sets is an
//! id-list intersection (the order-of-magnitude win of Example 4.3);
//! IDENTITY on a class set is an O(1) per-class flag check. JOIN must
//! materialize pairs (Algorithm 4's JOIN), as does any operator with one
//! materialized operand. The root expands surviving classes through `Ic2p`.

use crate::bisim::ClassId;
use crate::index::CpqxIndex;
use cpqx_graph::{ExtLabel, Graph, LabelSeq, Pair};
use cpqx_query::ops;
use cpqx_query::ops::EvalContext;
use cpqx_query::plan::Plan;

/// An intermediate result: `C` or `P` in Algorithm 3's notation.
#[derive(Clone, Debug, PartialEq)]
pub enum Intermediate {
    /// Sorted class ids — unions of whole equivalence classes.
    Classes(Vec<ClassId>),
    /// Normalized s-t pairs.
    Pairs(Vec<Pair>),
}

/// Ablation switches for the executor — both default to the paper's
/// behaviour; turning one off isolates its contribution (the `ablation_ops`
/// bench target measures exactly this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Keep conjunction at the class level (Prop. 4.1). When off,
    /// conjunctions materialize both sides into pairs first — the
    /// language-unaware strategy.
    pub class_level_conjunction: bool,
    /// Execute IDENTITY as a per-class flag check fused into the operators
    /// (the paper's third optimization). When off, identity filters
    /// materialized pairs.
    pub fused_identity: bool,
    /// Route single-label join operands through the graph's per-chunk CSR
    /// read faces ([`cpqx_graph::csr`]): a chain suffix `P ⋈ ⟦ℓ⟧` expands
    /// over forward faces, a chain prefix `⟦ℓ⟧ ⋈ P` streams reverse faces
    /// — neither materializes or re-sorts the label relation. When off,
    /// every join expands both operands from the index and sorted-merges
    /// them (the chunked-row baseline the differential harness and the
    /// `fig06_csr` bench compare against). Answers are identical either
    /// way.
    pub csr_faces: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { class_level_conjunction: true, fused_identity: true, csr_faces: true }
    }
}

/// Work counters collected during one plan execution — the EXPLAIN-style
/// instrumentation behind Table III's pruning-power measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of `Il2c` lookups performed.
    pub lookups: usize,
    /// Class identifiers retrieved by those lookups.
    pub classes_touched: usize,
    /// s-t pairs materialized from classes (`Ic2p` expansions).
    pub pairs_materialized: usize,
    /// Conjunctions resolved at the class level (Prop. 4.1).
    pub class_conjunctions: usize,
    /// Conjunctions that had to intersect pair sets.
    pub pair_intersections: usize,
    /// Sorted-merge joins executed.
    pub joins: usize,
    /// Joins answered through a CSR read face (a subset of `joins`):
    /// the single-label operand streamed the graph's per-chunk forward
    /// or reverse face instead of expanding from the index. Always 0
    /// with [`ExecOptions::csr_faces`] off — benches use this to tell
    /// cells where the fast path engaged from cells it cannot touch.
    pub csr_joins: usize,
}

/// Plan executor bound to an index and its graph.
pub struct Executor<'i, 'g> {
    index: &'i CpqxIndex,
    graph: &'g Graph,
    options: ExecOptions,
    stats: std::cell::Cell<ExecStats>,
    /// Per-execution scratch shared by every join of a plan (the borrow
    /// is confined to each single join call, never held across the
    /// recursion).
    ctx: std::cell::RefCell<EvalContext>,
}

impl<'i, 'g> Executor<'i, 'g> {
    /// Creates an executor. The graph is only consulted for the bare `id`
    /// plan (`AllId`); everything else is answered from the index.
    pub fn new(index: &'i CpqxIndex, graph: &'g Graph) -> Self {
        Self::with_options(index, graph, ExecOptions::default())
    }

    /// Creates an executor with explicit ablation switches.
    pub fn with_options(index: &'i CpqxIndex, graph: &'g Graph, options: ExecOptions) -> Self {
        Executor {
            index,
            graph,
            options,
            stats: std::cell::Cell::new(ExecStats::default()),
            ctx: std::cell::RefCell::new(EvalContext::new()),
        }
    }

    /// Runs a plan and returns the answers together with the work counters
    /// of this execution.
    pub fn run_explained(&self, plan: &Plan) -> (Vec<Pair>, ExecStats) {
        self.stats.set(ExecStats::default());
        let out = self.run(plan);
        (out, self.stats.get())
    }

    #[inline]
    fn bump(&self, f: impl FnOnce(&mut ExecStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Runs a plan to a normalized pair set.
    pub fn run(&self, plan: &Plan) -> Vec<Pair> {
        match self.eval(plan) {
            Intermediate::Pairs(p) => p,
            Intermediate::Classes(cs) => self.expand(&cs),
        }
    }

    /// Runs a plan, returning only the first answer (ordered by class
    /// discovery for class-level results, pair order otherwise).
    pub fn run_first(&self, plan: &Plan) -> Option<Pair> {
        match self.eval(plan) {
            Intermediate::Pairs(p) => p.first().copied(),
            Intermediate::Classes(cs) => {
                cs.iter().find_map(|&c| self.index.class_pairs(c).first().copied())
            }
        }
    }

    /// Evaluates a plan node to an intermediate (Algorithm 3's recursion).
    pub fn eval(&self, plan: &Plan) -> Intermediate {
        match plan {
            Plan::AllId => Intermediate::Pairs(ops::all_loops(self.graph)),
            Plan::Lookup(seq) => {
                debug_assert!(self.index.is_indexed(seq), "planner must split {seq:?}");
                let cs = self.index.lookup(seq);
                self.bump(|s| {
                    s.lookups += 1;
                    s.classes_touched += cs.len();
                });
                Intermediate::Classes(cs.to_vec())
            }
            Plan::LookupId(seq) => {
                // Fused `⟦seq⟧ ∩ id`: keep cyclic classes only (the paper's
                // "check the first s-t pair" — cyclicity is uniform per
                // class, so it is a flag here).
                let looked = self.index.lookup(seq);
                self.bump(|s| {
                    s.lookups += 1;
                    s.classes_touched += looked.len();
                });
                if !self.options.fused_identity {
                    let pairs = self.expand(looked);
                    return Intermediate::Pairs(ops::filter_loops(&pairs));
                }
                let cs = looked.iter().copied().filter(|&c| self.index.class_is_loop(c)).collect();
                Intermediate::Classes(cs)
            }
            Plan::Join(a, b) => self.join(a, b, false),
            Plan::JoinId(a, b) => self.join(a, b, true),
            Plan::Conj(a, b) => match (self.eval(a), self.eval(b)) {
                // The class-level conjunction of Prop. 4.1.
                (Intermediate::Classes(x), Intermediate::Classes(y))
                    if self.options.class_level_conjunction =>
                {
                    self.bump(|s| s.class_conjunctions += 1);
                    Intermediate::Classes(intersect_ids(&x, &y))
                }
                (x, y) => {
                    let left = self.pairs(x);
                    let right = self.pairs(y);
                    self.bump(|s| s.pair_intersections += 1);
                    Intermediate::Pairs(ops::intersect_pairs(&left, &right))
                }
            },
            Plan::ConjId(a, b) => match (self.eval(a), self.eval(b)) {
                (Intermediate::Classes(x), Intermediate::Classes(y))
                    if self.options.class_level_conjunction && self.options.fused_identity =>
                {
                    self.bump(|s| s.class_conjunctions += 1);
                    let cs = intersect_ids(&x, &y)
                        .into_iter()
                        .filter(|&c| self.index.class_is_loop(c))
                        .collect();
                    Intermediate::Classes(cs)
                }
                (x, y) => {
                    let left = self.pairs(x);
                    let right = self.pairs(y);
                    self.bump(|s| s.pair_intersections += 1);
                    let out = ops::intersect_pairs(&left, &right);
                    Intermediate::Pairs(ops::filter_loops(&out))
                }
            },
        }
    }

    /// `JOIN` / fused `JOIN-ID` (Algorithm 4), with the CSR fast paths.
    ///
    /// When [`ExecOptions::csr_faces`] is on (and identity stays fused), a
    /// single-label operand is executed against the graph's per-chunk CSR
    /// faces instead of being expanded from the index: a label *right*
    /// operand becomes a forward-face frontier expansion, a label *left*
    /// operand a reverse-face streamed merge — in both cases the label
    /// relation is never materialized, re-keyed, or sorted. The `Il2c`
    /// lookup still runs (it is the emptiness check and keeps the EXPLAIN
    /// counters describing the same logical work), but its classes are
    /// not expanded.
    fn join(&self, a: &Plan, b: &Plan, require_loop: bool) -> Intermediate {
        let csr = self.options.csr_faces && (self.options.fused_identity || !require_loop);
        // Label prefix: ⟦ℓ⟧ ⋈ P over reverse faces.
        if csr && self.single_label(a).is_some() && self.single_label(b).is_none() {
            let (seq, l) = self.single_label(a).unwrap();
            if self.lookup_counted(seq).is_empty() {
                return Intermediate::Pairs(Vec::new());
            }
            let right = self.pairs(self.eval(b));
            self.bump(|s| {
                s.joins += 1;
                s.csr_joins += 1;
            });
            return Intermediate::Pairs(ops::join_label_left(self.graph, l, &right, require_loop));
        }
        let left = self.pairs(self.eval(a));
        if left.is_empty() {
            return Intermediate::Pairs(Vec::new());
        }
        // Label suffix: P ⋈ ⟦ℓ⟧ over forward faces.
        if csr {
            if let Some((seq, l)) = self.single_label(b) {
                self.bump(|s| {
                    s.joins += 1;
                    s.csr_joins += 1;
                });
                if self.lookup_counted(seq).is_empty() {
                    return Intermediate::Pairs(Vec::new());
                }
                return Intermediate::Pairs(if require_loop {
                    ops::expand_adjacency_id(self.graph, &left, l)
                } else {
                    ops::expand_adjacency(self.graph, &left, l)
                });
            }
        }
        let right = self.pairs(self.eval(b));
        self.bump(|s| s.joins += 1);
        let mut ctx = self.ctx.borrow_mut();
        if !require_loop {
            Intermediate::Pairs(ctx.join_pairs(&left, &right))
        } else if self.options.fused_identity {
            Intermediate::Pairs(ctx.join_pairs_id(&left, &right))
        } else {
            let joined = ctx.join_pairs(&left, &right);
            Intermediate::Pairs(ops::filter_loops(&joined))
        }
    }

    /// The plan's extended label if it is a bare single-label lookup.
    fn single_label(&self, p: &Plan) -> Option<(LabelSeq, ExtLabel)> {
        match p {
            Plan::Lookup(seq) if seq.len() == 1 => Some((*seq, seq.get(0))),
            _ => None,
        }
    }

    /// `Il2c` lookup that records the EXPLAIN counters (shared by the CSR
    /// fast paths, which consult the index for emptiness and stats but
    /// answer pair work from the graph faces).
    fn lookup_counted(&self, seq: LabelSeq) -> &[ClassId] {
        let cs = self.index.lookup(&seq);
        self.bump(|s| {
            s.lookups += 1;
            s.classes_touched += cs.len();
        });
        cs
    }

    /// Materializes an intermediate to pairs.
    fn pairs(&self, im: Intermediate) -> Vec<Pair> {
        match im {
            Intermediate::Pairs(p) => p,
            Intermediate::Classes(cs) => self.expand(&cs),
        }
    }

    /// `⋃_{c} Ic2p(c)`, normalized. Classes are disjoint, so only a sort is
    /// needed.
    fn expand(&self, cs: &[ClassId]) -> Vec<Pair> {
        let total: usize = cs.iter().map(|&c| self.index.class_pairs(c).len()).sum();
        self.bump(|s| s.pairs_materialized += total);
        let mut out = Vec::with_capacity(total);
        for &c in cs {
            out.extend_from_slice(self.index.class_pairs(c));
        }
        out.sort_unstable();
        out
    }
}

/// Sorted intersection of class-id lists (galloping on skewed inputs —
/// same dispatch as the pair-set intersection).
pub fn intersect_ids(a: &[ClassId], b: &[ClassId]) -> Vec<ClassId> {
    let mut out = Vec::new();
    cpqx_graph::pair::intersect_sorted(a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_intersection() {
        assert_eq!(intersect_ids(&[1, 3, 5, 9], &[2, 3, 9]), vec![3, 9]);
        assert_eq!(intersect_ids(&[], &[1]), Vec::<ClassId>::new());
    }

    #[test]
    fn explain_counts_class_level_work() {
        use cpqx_graph::generate;
        let g = generate::gex();
        let idx = crate::CpqxIndex::build(&g, 2);
        let q = cpqx_query::parse_cpq("(f . f) & f^-1", &g).unwrap();
        let (result, stats) = idx.explain(&g, &q);
        assert_eq!(result.len(), 3);
        assert_eq!(stats.lookups, 2, "two lookups: ⟨f,f⟩ and ⟨f⁻¹⟩");
        assert_eq!(stats.classes_touched, 6, "Example 4.3: 3 + 3 class ids");
        assert_eq!(stats.class_conjunctions, 1, "resolved without touching pairs");
        assert_eq!(stats.pair_intersections, 0);
        assert_eq!(stats.joins, 0);
        assert_eq!(stats.pairs_materialized, 3, "only the final triad expands");
    }

    #[test]
    fn explain_counts_join_work() {
        use cpqx_graph::generate;
        let g = generate::gex();
        let idx = crate::CpqxIndex::build(&g, 2);
        let q = cpqx_query::parse_cpq("f . f . f", &g).unwrap();
        let (_, stats) = idx.explain(&g, &q);
        assert_eq!(stats.lookups, 2, "⟨f,f⟩ ⋈ ⟨f⟩ at k = 2");
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.class_conjunctions, 0);
    }

    #[test]
    fn ablation_disables_class_conjunction() {
        use cpqx_graph::generate;
        let g = generate::gex();
        let idx = crate::CpqxIndex::build(&g, 2);
        let q = cpqx_query::parse_cpq("(f . f) & f^-1", &g).unwrap();
        let exec = Executor::with_options(
            &idx,
            &g,
            ExecOptions { class_level_conjunction: false, ..ExecOptions::default() },
        );
        let (result, stats) = exec.run_explained(&idx.plan(&q));
        assert_eq!(result.len(), 3, "answers unchanged");
        assert_eq!(stats.class_conjunctions, 0);
        assert_eq!(stats.pair_intersections, 1, "falls back to pair sets");
        assert!(stats.pairs_materialized > 3, "must expand both operands");
    }
}
