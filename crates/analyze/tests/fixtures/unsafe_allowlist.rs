//! unsafe-allowlist fixture: tilde-marked lines must each yield the named
//! finding; everything else must stay silent. Never compiled.

fn bad_block() {
    unsafe { core::ptr::null::<u8>().read_volatile() }; //~ unsafe-allowlist
}

unsafe fn bad_fn(p: *const u8) -> u8 { //~ unsafe-allowlist
    *p
}

fn mentions_unsafe_in_prose() {
    // The word unsafe in a comment or string is not a keyword use.
    let _ = "unsafe";
}
