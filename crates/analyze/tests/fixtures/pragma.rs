//! pragma fixture: tilde-marked lines must each yield the named finding;
//! everything else must stay silent (the suppressed cow-seam finding
//! is asserted separately). Never compiled.

fn suppressed(c: &mut VertexChunk) { // cpqx-analyze: allow(cow-seam): fixture — caller invalidates the face
    c.adj.clear();
}

// cpqx-analyze: allow(no-such-rule): whatever //~ pragma
fn after_unknown_rule() {}

// cpqx-analyze: allow(cow-seam) //~ pragma
fn unjustified(c: &mut VertexChunk) { //~ cow-seam
    c.adj.clear();
}

// cpqx-analyze: allow(codec-hygiene): nothing here ever fires //~ pragma
fn unused_suppression() {}

// cpqx-analyze: this is not the allow grammar //~ pragma
fn after_malformed() {}
