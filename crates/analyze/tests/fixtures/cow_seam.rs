//! cow-seam fixture: every tilde-marked line must produce
//! exactly one finding of that rule; unmarked lines must stay silent.
//! Never compiled — scanned by tests/analyzer.rs.

use std::sync::Arc;

fn bad_make_mut(g: &mut Graph) {
    let c = Arc::make_mut(&mut g.chunks[0]); //~ cow-seam
    c.adj.push(Vec::new());
}

fn bad_handout(c: &mut VertexChunk) { //~ cow-seam
    c.adj.clear();
}

fn good_make_mut(g: &mut Graph) {
    let c = Arc::make_mut(&mut g.chunks[0]);
    c.csr.take();
    c.adj.push(Vec::new());
}

fn good_handout(c: &mut VertexChunk) {
    c.csr.take();
    c.adj.clear();
}

fn make_mut_elsewhere(names: &mut Arc<Vec<String>>) {
    // Not chunk storage: no CSR face to invalidate.
    Arc::make_mut(names).push(String::new());
}
