//! lock-order fixture: tilde-marked lines must each yield the named finding;
//! everything else must stay silent. Never compiled.

fn bad_inverted_order(e: &Engine) {
    let _r = e.results.lock().unwrap();
    let _w = e.writer.lock().unwrap(); //~ lock-order
}

fn bad_reentrant(e: &Engine) {
    let _a = e.writer.lock().unwrap();
    let _b = e.writer.lock().unwrap(); //~ lock-order
}

fn bad_undeclared(e: &Engine) {
    let _x = e.mystery.lock().unwrap(); //~ lock-order
}

fn locks_results(e: &Engine) {
    let mut res = e.results.lock().unwrap();
    res.clear();
}

fn bad_via_call(e: &Engine) {
    let _r = e.results.lock().unwrap();
    locks_results(e); //~ lock-order
}

fn good_declared_order(e: &Engine) {
    let _w = e.writer.lock().unwrap();
    let _r = e.results.lock().unwrap();
}

fn good_scoped(e: &Engine) {
    {
        let _r = e.results.lock().unwrap();
    }
    let _w = e.writer.lock().unwrap();
}

fn good_dropped(e: &Engine) {
    let r = e.results.lock().unwrap();
    drop(r);
    let _w = e.writer.lock().unwrap();
}

fn good_temporary(e: &Engine) {
    // A consumed guard dies at the semicolon: no hold, no ordering.
    e.results.lock().unwrap().clear();
    let _w = e.writer.lock().unwrap();
}

fn good_call_after_release(e: &Engine) {
    {
        let _r = e.results.lock().unwrap();
    }
    locks_results(e);
}

fn good_rwlock_and_tuple(e: &Engine) {
    let _w = e.writer.lock().unwrap();
    let _c = e.current.read().unwrap();
    let _q = e.jobs.0.lock().unwrap();
}
