//! codec-hygiene fixture: tilde-marked lines must each yield the named
//! finding; everything else must stay silent. Never compiled.

fn bad_unwrap(buf: &[u8]) -> Result<u8, DecodeError> {
    Ok(buf.first().copied().unwrap()) //~ codec-hygiene
}

fn bad_expect(buf: &[u8]) -> Result<u8, DecodeError> {
    Ok(buf.first().copied().expect("byte")) //~ codec-hygiene
}

fn bad_index(buf: &[u8]) -> Result<u8, DecodeError> {
    Ok(buf[0]) //~ codec-hygiene
}

fn bad_macro(buf: &[u8]) -> Result<u8, DecodeError> {
    debug_assert!(!buf.is_empty()); //~ codec-hygiene
    Err(DecodeError::Truncated)
}

fn bad_cast(n: u64) -> Result<u32, DecodeError> {
    Ok(n as u32) //~ codec-hygiene
}

fn bad_capacity(n: usize) -> Result<Vec<u8>, DecodeError> {
    Ok(Vec::with_capacity(n)) //~ codec-hygiene
}

fn good_guarded(n: usize, remaining: usize) -> Result<Vec<u8>, DecodeError> {
    if self_inconsistent_count(n, 1, remaining) {
        return Err(DecodeError::Truncated);
    }
    Ok(Vec::with_capacity(n))
}

fn good_clamped(n: usize) -> Result<Vec<u8>, DecodeError> {
    Ok(Vec::with_capacity(n.min(1024)))
}

fn good_destructuring(buf: &[u8]) -> Result<u8, DecodeError> {
    let [b] = take_arr(buf)?;
    Ok(b)
}

fn good_widening(n: u32) -> Result<u64, DecodeError> {
    Ok(n as u64)
}

fn not_a_decode_fn(buf: &[u8]) -> u8 {
    // Outside the decode surface: panics are the caller's contract.
    buf[0]
}
