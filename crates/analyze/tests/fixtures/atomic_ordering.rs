//! atomic-ordering fixture: tilde-marked lines must each yield the named
//! finding; everything else must stay silent. Never compiled.

fn bad_counter_rmw(c: &Counters) {
    c.hits.fetch_add(1, Ordering::SeqCst); //~ atomic-ordering
}

fn bad_counter_load(c: &Counters) -> u64 {
    c.hits.load(Ordering::Acquire) //~ atomic-ordering
}

fn bad_publication_load(s: &Shared) -> bool {
    s.stop.load(Ordering::Relaxed) //~ atomic-ordering
}

fn bad_publication_store(s: &Shared) {
    s.stop.store(true, Ordering::SeqCst); //~ atomic-ordering
}

fn bad_unclassified_store(s: &Shared) {
    s.mystery.store(1, Ordering::Relaxed); //~ atomic-ordering
}

fn good_sites(s: &Shared, c: &Counters) {
    c.hits.fetch_add(1, Ordering::Relaxed);
    let _ = c.hits.load(Ordering::Relaxed);
    let _ = s.stop.load(Ordering::Acquire);
    s.stop.store(true, Ordering::Release);
    s.stop.swap(true, Ordering::AcqRel);
    s.enabled.store(true, Ordering::Relaxed);
    s.wal_bytes.store(0, Ordering::Relaxed);
}
