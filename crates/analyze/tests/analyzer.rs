//! Fixture exactness tests — every `//~ <rule>` marker in a fixture
//! must produce exactly one finding of that rule on that line, and
//! nothing else may fire — plus the workspace-is-clean gate that makes
//! `cargo test` enforce the analyzer in tier-1 CI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use cpqx_analyze::model::SourceFile;
use cpqx_analyze::rules;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Loads a fixture and collects its `//~ <rule>` markers as the
/// expected `(rule, line) -> count` multiset.
fn load_fixture(name: &str) -> (SourceFile, BTreeMap<(String, u32), usize>) {
    let path = fixture_path(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut expected = BTreeMap::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                *expected.entry((rule.to_string(), (i + 1) as u32)).or_insert(0usize) += 1;
            }
        }
    }
    assert!(!expected.is_empty(), "fixture {name} declares no expected findings");
    let rel = format!("crates/analyze/tests/fixtures/{name}");
    (SourceFile::parse(rel, &src), expected)
}

/// Runs all rules over one fixture and asserts the finding multiset
/// matches the markers exactly (both directions: nothing missing,
/// nothing extra — including cross-rule contamination).
fn assert_fires_exactly(name: &str) -> rules::Analysis {
    let (file, expected) = load_fixture(name);
    let analysis = rules::run(std::slice::from_ref(&file));
    let mut actual = BTreeMap::new();
    for f in &analysis.findings {
        *actual.entry((f.rule.to_string(), f.line)).or_insert(0usize) += 1;
    }
    assert_eq!(
        actual, expected,
        "finding mismatch in {name}; actual findings: {:#?}",
        analysis.findings
    );
    analysis
}

#[test]
fn cow_seam_fixture() {
    assert_fires_exactly("cow_seam.rs");
}

#[test]
fn codec_hygiene_fixture() {
    assert_fires_exactly("codec_hygiene.rs");
}

#[test]
fn atomic_ordering_fixture() {
    assert_fires_exactly("atomic_ordering.rs");
}

#[test]
fn lock_order_fixture() {
    assert_fires_exactly("lock_order.rs");
}

#[test]
fn unsafe_allowlist_fixture() {
    assert_fires_exactly("unsafe_allowlist.rs");
}

#[test]
fn pragma_fixture() {
    let analysis = assert_fires_exactly("pragma.rs");
    // The one justified, covering pragma silences exactly one finding.
    assert_eq!(analysis.suppressed.len(), 1, "suppressed: {:#?}", analysis.suppressed);
    assert_eq!(analysis.suppressed[0].rule, "cow-seam");
}

/// Tier-1 gate: the workspace's own sources carry zero unsuppressed
/// findings. Run `cargo run -p cpqx-analyze` for the full report when
/// this fails.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = cpqx_analyze::analyze_workspace(&root).expect("workspace scan");
    assert!(analysis.files > 100, "scan looks truncated: {} files", analysis.files);
    assert!(
        analysis.findings.is_empty(),
        "workspace has unsuppressed findings:\n{}",
        analysis.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
