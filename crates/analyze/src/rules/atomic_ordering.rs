//! `atomic-ordering`: every atomic site is classified and ordered
//! accordingly.
//!
//! The obs histograms (PR 7), the engine counters and the net server's
//! shutdown flag all hand-pick `std::sync::atomic` orderings. The
//! correctness argument differs by *role*, so the rule first classifies
//! each site, then checks the ordering against the class:
//!
//! * **counter** — a monotonically accumulated statistic (or an
//!   advisory flag) whose readers tolerate arbitrary staleness; nothing
//!   is published through it. Required ordering: `Relaxed`. Anything
//!   stronger taxes the hot path for no correctness gain (`SeqCst` on a
//!   counter also *suggests* a publication protocol that does not
//!   exist, which is worse than the cost).
//! * **publication** — a flag/pointer another thread reads to decide
//!   whether some *other* state is visible (e.g. the server stop flag).
//!   Required orderings: `Acquire` loads, `Release` stores, `AcqRel`
//!   RMWs. `Relaxed` here is a real bug; `SeqCst` hides which edge the
//!   site actually needs and is flagged as over-ordering (use a
//!   justified `allow(atomic-ordering)` pragma for a genuine
//!   total-order protocol — none exists in this workspace today).
//!
//! Classification is by site shape and a declared field table:
//! `fetch_*` RMWs are counters by construction; `load`s default to
//! counter unless the field is declared a publication edge; `store`/
//! `swap`/`compare_exchange` — the writes capable of publishing — must
//! name a declared field, so a new atomic write cannot slip in
//! unclassified.

use crate::model::SourceFile;
use crate::rules::{Finding, Rule};

pub struct AtomicOrdering;

const ID: &str = "atomic-ordering";

/// Fields that publish: another thread's load of this field gates its
/// view of other state (or its control flow). Each entry documents why.
const PUBLICATION_FIELDS: &[&str] = &[
    // cpqx-net server shutdown flag: workers/acceptor observe it to stop
    // touching shared server state; the set happens-before the join.
    "stop",
];

/// Fields written with counter semantics (advisory values, readers
/// tolerate staleness; all heavyweight state they describe is guarded
/// by locks). Declared so that atomic *writes* are never unclassified.
const COUNTER_WRITE_FIELDS: &[&str] = &[
    // cpqx-obs sampling switch: advisory — a racing probe merely records
    // or skips one extra trace; the rings themselves are mutex-guarded.
    "enabled",
    // cpqx-obs slow-query threshold: advisory tuning knob, same story.
    "slow_us",
    // cpqx-store WAL byte gauge: reset under the Store's inner lock;
    // readers only use it as a checkpoint heuristic.
    "wal_bytes",
];

const FETCH_RMWS: &[&str] =
    &["fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor", "fetch_max", "fetch_min"];

/// Crates whose `src/` trees are in scope: everything that runs atomics
/// on the serving path.
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/engine/src/",
    "crates/net/src/",
    "crates/obs/src/",
    "crates/store/src/",
];

impl Rule for AtomicOrdering {
    fn id(&self) -> &'static str {
        ID
    }

    fn explanation(&self) -> &'static str {
        "atomic sites are classified counter vs. publication edge: counters must be Relaxed, \
         publication edges Acquire/Release/AcqRel (not Relaxed, not blanket SeqCst), and \
         atomic writes must name a declared field"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let in_scope =
            SCOPE.iter().any(|p| file.rel.starts_with(p)) || crate::rules::is_fixture(&file.rel);
        if !in_scope {
            return;
        }
        for at in file.find_seq(0..file.toks.len(), &["Ordering", "::"]) {
            let ordering = file.text(at + 2).to_string();
            let Some((method, field)) = call_site(file, at) else {
                continue;
            };
            let mut finding = |message: String| {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: file.line(at),
                    rule: ID,
                    message,
                });
            };
            let publication = field.as_deref().is_some_and(|f| PUBLICATION_FIELDS.contains(&f));
            let counter_write = field.as_deref().is_some_and(|f| COUNTER_WRITE_FIELDS.contains(&f));
            let site = field.unwrap_or_else(|| "<expr>".into());
            if FETCH_RMWS.contains(&method.as_str()) && !publication {
                if ordering != "Relaxed" {
                    finding(format!(
                        "`{site}.{method}` is a plain counter RMW ordered {ordering} — counters \
                         must be Relaxed (stronger orderings tax the hot path and imply a \
                         publication protocol that does not exist)",
                    ));
                }
            } else if method == "load" {
                match (publication, ordering.as_str()) {
                    (true, "Acquire") | (false, "Relaxed") => {}
                    (true, o) => finding(format!(
                        "`{site}.load` is a publication-edge read ordered {o} — it must be \
                         Acquire so the writer's Release edge is observed",
                    )),
                    (false, o) => finding(format!(
                        "`{site}.load` is a counter read ordered {o} — counter reads must be \
                         Relaxed",
                    )),
                }
            } else if matches!(method.as_str(), "store" | "swap")
                || method.starts_with("compare_exchange")
                || FETCH_RMWS.contains(&method.as_str())
            {
                let required: &[&str] = if publication {
                    if method == "store" {
                        &["Release"]
                    } else {
                        &["AcqRel"]
                    }
                } else if counter_write {
                    &["Relaxed"]
                } else {
                    finding(format!(
                        "`{site}.{method}` is an unclassified atomic write — add the field to \
                         the rule's publication or counter table (with justification) so its \
                         required ordering is declared",
                    ));
                    continue;
                };
                if !required.contains(&ordering.as_str()) {
                    finding(format!(
                        "`{site}.{method}` is a {} write ordered {ordering} — required: {}",
                        if publication { "publication-edge" } else { "counter" },
                        required.join("/"),
                    ));
                }
            }
        }
    }
}

/// For an `Ordering::X` argument at token `at`, finds the enclosing call:
/// returns the method name and the receiver's base field (if the
/// receiver chain ends in an identifier).
fn call_site(file: &SourceFile, at: usize) -> Option<(String, Option<String>)> {
    // Walk back to the unbalanced `(` that opened this argument list.
    let mut depth = 0i64;
    let mut j = at;
    loop {
        j = j.checked_sub(1)?;
        match file.text(j) {
            ")" | "]" => depth += 1,
            "(" | "[" if depth > 0 => depth -= 1,
            "(" => break,
            "" => return None,
            _ => {}
        }
    }
    let method = file.toks.get(j.checked_sub(1)?)?.text.clone();
    // Receiver base: `recv.method(` — the token before the method must
    // be a dot for a field to exist.
    let dot = j.checked_sub(2)?;
    let field = if file.text(dot) == "." {
        file.receiver_field(dot).map(|b| file.text(b).to_string())
    } else {
        None
    };
    Some((method, field))
}
