//! The rule registry and the suppression engine.
//!
//! # Rule ids
//!
//! | id | invariant |
//! |----|-----------|
//! | `cow-seam` | every `Arc::make_mut` on chunk storage (and every fn handing out `&mut VertexChunk`) invalidates the chunk's cached CSR face on the same path |
//! | `codec-hygiene` | wire decode paths are panic-free: no unwrap/expect/panics, no direct indexing, no truncating `as` casts, every wire count bounds-checked before `Vec::with_capacity` |
//! | `atomic-ordering` | every atomic site is classified counter vs. publication edge; counters are `Relaxed`, publication edges are `Acquire`/`Release`/`AcqRel` |
//! | `lock-order` | nested lock acquisitions (directly or through same-file calls) respect the declared workspace lock order |
//! | `unsafe-allowlist` | `unsafe` appears only in allowlisted files |
//! | `pragma` | suppression pragmas are well-formed, justified, name a known rule, and suppress something |
//!
//! # Suppression pragma
//!
//! ```text
//! // cpqx-analyze: allow(<rule-id>): <justification>
//! ```
//!
//! A pragma suppresses findings of `<rule-id>` on its own line, or — for
//! an own-line comment — on the next line of code. The justification
//! after the colon is mandatory and must say *why* the invariant holds
//! anyway; the `pragma` meta-rule reports bare or unused suppressions.
//!
//! # Adding a rule
//!
//! Implement [`Rule`] in a new `rules/` module (token-scan the
//! [`SourceFile`](crate::model::SourceFile); emit one
//! [`Finding`] per violation with the line it anchors to), register it in
//! [`all_rules`], and add a fixture under `tests/fixtures/` plus an
//! exactness test in `tests/analyzer.rs` proving it fires exactly there.

use crate::model::SourceFile;

mod atomic_ordering;
mod codec_hygiene;
mod cow_seam;
mod lock_order;
mod unsafe_allowlist;

pub use atomic_ordering::AtomicOrdering;
pub use codec_hygiene::CodecHygiene;
pub use cow_seam::CowSeam;
pub use lock_order::LockOrder;
pub use unsafe_allowlist::UnsafeAllowlist;

/// One diagnostic: a rule violation anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (see the module table).
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A single invariant checker over one file's token stream.
pub trait Rule {
    /// Stable rule id used in diagnostics and `allow(...)` pragmas.
    fn id(&self) -> &'static str;
    /// One-line statement of the enforced invariant.
    fn explanation(&self) -> &'static str;
    /// Scans `file`, pushing one [`Finding`] per violation.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// Every registered rule, in diagnostic order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(CowSeam),
        Box::new(CodecHygiene),
        Box::new(AtomicOrdering),
        Box::new(LockOrder),
        Box::new(UnsafeAllowlist),
    ]
}

/// Rule id of the pragma meta-diagnostics.
pub const PRAGMA_RULE: &str = "pragma";

/// Is `rel` one of the analyzer's own test fixtures? Fixtures are
/// excluded from workspace scans but must be in scope for every rule
/// when a test points the analyzer straight at them.
pub(crate) fn is_fixture(rel: &str) -> bool {
    rel.contains("tests/fixtures/")
}

/// Result of running the rules over a set of files and applying
/// suppressions.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings — the tool's exit status is driven by this.
    pub findings: Vec<Finding>,
    /// Findings matched (and silenced) by a justified pragma.
    pub suppressed: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
}

/// Runs every rule over `files` and applies the suppression pragmas.
///
/// Pragma semantics are strict: a suppression must be well-formed, carry
/// a justification, name a registered rule and actually match a finding;
/// each shortfall is itself a `pragma` finding (which no pragma can
/// suppress).
pub fn run(files: &[SourceFile]) -> Analysis {
    let rules = all_rules();
    let known: Vec<&'static str> = rules.iter().map(|r| r.id()).collect();
    let mut analysis = Analysis { files: files.len(), ..Analysis::default() };
    for file in files {
        let mut raw = Vec::new();
        for rule in &rules {
            rule.check(file, &mut raw);
        }
        let mut used = vec![false; file.pragmas.len()];
        for finding in raw {
            let slot = file.pragmas.iter().position(|p| {
                p.rule == finding.rule
                    && !p.justification.is_empty()
                    && p.covers.contains(&finding.line)
            });
            match slot {
                Some(pi) => {
                    used[pi] = true;
                    analysis.suppressed.push(finding);
                }
                None => analysis.findings.push(finding),
            }
        }
        for (p, was_used) in file.pragmas.iter().zip(&used) {
            let problem = if p.rule.is_empty() {
                Some("malformed pragma: expected `cpqx-analyze: allow(<rule>): <why>`".to_string())
            } else if !known.contains(&p.rule.as_str()) {
                Some(format!("pragma names unknown rule `{}`", p.rule))
            } else if p.justification.is_empty() {
                Some(format!(
                    "pragma `allow({})` lacks a justification — append `: <why the invariant \
                     holds anyway>`",
                    p.rule
                ))
            } else if !*was_used {
                Some(format!(
                    "unused pragma: no `{}` finding on the covered line{}",
                    p.rule,
                    if p.covers.len() > 1 { "s" } else { "" }
                ))
            } else {
                None
            };
            if let Some(message) = problem {
                analysis.findings.push(Finding {
                    file: file.rel.clone(),
                    line: p.line,
                    rule: PRAGMA_RULE,
                    message,
                });
            }
        }
    }
    analysis.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    analysis
}
