//! `cow-seam`: chunk mutation must invalidate the cached CSR face.
//!
//! The graph's `VertexChunk`s cache a lazily built CSR read face in a
//! `OnceLock` (PR 8). `Arc::make_mut` does **not** clone at refcount 1,
//! so a mutation seam that forgets the explicit `csr.take()` serves
//! stale reads — silently, and only under the refcount-1 interleaving,
//! which is exactly the kind of bug a test suite misses. This rule makes
//! the discipline machine-checked:
//!
//! * any fn calling `Arc::make_mut(...)` with the chunk storage
//!   (`chunks`) in the argument, and
//! * any fn whose signature takes or returns `&mut VertexChunk`,
//!
//! must contain a `.csr.take()` invalidation in its body (or carry a
//! justified `allow(cow-seam)` pragma). Scoped to `src/` files — tests
//! mutate through the public API, which funnels into the checked seams.

use crate::model::SourceFile;
use crate::rules::{Finding, Rule};

pub struct CowSeam;

const ID: &str = "cow-seam";

impl Rule for CowSeam {
    fn id(&self) -> &'static str {
        ID
    }

    fn explanation(&self) -> &'static str {
        "chunk COW seams (Arc::make_mut on chunk storage, &mut VertexChunk) must invalidate the \
         cached CSR face via .csr.take() on the same path"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !file.rel.contains("/src/") && !crate::rules::is_fixture(&file.rel) {
            return;
        }
        for f in &file.fns {
            let body = f.body();
            let invalidates = file.contains_seq(body.clone(), &[".", "csr", ".", "take", "("]);

            // Seam form 1: Arc::make_mut(<expr mentioning chunk storage>).
            for at in file.find_seq(body.clone(), &["Arc", "::", "make_mut", "("]) {
                let open = at + 3;
                let close = file.matching_close(open);
                let arg_mentions_chunks = (open + 1..close).any(|i| file.text(i) == "chunks");
                if arg_mentions_chunks && !invalidates {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: file.line(at),
                        rule: ID,
                        message: format!(
                            "fn `{}` calls Arc::make_mut on chunk storage without invalidating \
                             the CSR face (`.csr.take()`) on the same path — at refcount 1 \
                             make_mut mutates in place and the cached face goes stale",
                            f.name
                        ),
                    });
                }
            }

            // Seam form 2: the signature hands out `&mut VertexChunk`.
            let sig = f.sig();
            let hands_out_chunk = (sig.start..sig.end.saturating_sub(2))
                .any(|i| file.is_seq(i, &["&", "mut", "VertexChunk"]));
            if hands_out_chunk && !invalidates {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: f.line,
                    rule: ID,
                    message: format!(
                        "fn `{}` takes or returns `&mut VertexChunk` but never invalidates the \
                         CSR face (`.csr.take()`) — every mutable chunk access is a COW seam",
                        f.name
                    ),
                });
            }
        }
    }
}
