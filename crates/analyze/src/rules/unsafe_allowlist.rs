//! `unsafe-allowlist`: `unsafe` appears only where it is audited.
//!
//! The workspace is currently 100% safe Rust — the PR 6 worker pool was
//! deliberately built on scoped threads and mutex slots instead of raw
//! pointers. If `unsafe` ever becomes necessary it belongs in
//! `crates/core/src/pool.rs` (the one module whose job is cross-thread
//! hand-off), where it can be reviewed as a unit; this rule turns that
//! policy into a diagnostic so an `unsafe` block cannot quietly land in
//! a codec or an executor.

use crate::model::{SourceFile, TokKind};
use crate::rules::{Finding, Rule};

pub struct UnsafeAllowlist;

const ID: &str = "unsafe-allowlist";

/// Files allowed to contain `unsafe` code.
const ALLOWED: &[&str] = &[
    // The worker pool owns all cross-thread hand-off; any future unsafe
    // (e.g. an uninitialized slot optimisation) is audited here.
    "crates/core/src/pool.rs",
];

impl Rule for UnsafeAllowlist {
    fn id(&self) -> &'static str {
        ID
    }

    fn explanation(&self) -> &'static str {
        "`unsafe` is permitted only in allowlisted files (crates/core/src/pool.rs); everywhere \
         else the workspace stays 100% safe Rust"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if ALLOWED.contains(&file.rel.as_str()) {
            return;
        }
        let in_scope = file.rel.ends_with(".rs") || crate::rules::is_fixture(&file.rel);
        if !in_scope {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind == TokKind::Ident && t.text == "unsafe" {
                let context = match file.text(i + 1) {
                    "{" => "block",
                    "fn" => "fn",
                    "impl" => "impl",
                    "trait" => "trait",
                    _ => "keyword",
                };
                out.push(Finding {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: ID,
                    message: format!(
                        "`unsafe` {context} outside the allowlist — the workspace is safe Rust \
                         by policy; move the code into crates/core/src/pool.rs or justify an \
                         allowlist entry in rules/unsafe_allowlist.rs",
                    ),
                });
            }
        }
    }
}
