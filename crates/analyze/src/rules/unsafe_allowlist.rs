//! `unsafe-allowlist`: `unsafe` appears only where it is audited.
//!
//! The workspace keeps `unsafe` confined to two audited sites. The PR 6
//! worker pool was deliberately built on scoped threads and mutex slots
//! instead of raw pointers, reserving `crates/core/src/pool.rs` as the
//! one place cross-thread hand-off tricks may land. The event-driven
//! server added `crates/net/src/sys.rs` — a thin `epoll`/`eventfd`
//! syscall shim whose every `unsafe` block cites a numbered invariant
//! in the module's rustdoc, reviewable as a unit. This rule turns that
//! policy into a diagnostic so an `unsafe` block cannot quietly land in
//! a codec or an executor.

use crate::model::{SourceFile, TokKind};
use crate::rules::{Finding, Rule};

pub struct UnsafeAllowlist;

const ID: &str = "unsafe-allowlist";

/// Files allowed to contain `unsafe` code.
const ALLOWED: &[&str] = &[
    // The worker pool owns all cross-thread hand-off; any future unsafe
    // (e.g. an uninitialized slot optimisation) is audited here.
    "crates/core/src/pool.rs",
    // The raw epoll/eventfd syscall shim behind the event-driven
    // server: every unsafe block cites a numbered invariant from the
    // module rustdoc (FFI signatures, pointer lifetimes, fd ownership).
    "crates/net/src/sys.rs",
];

impl Rule for UnsafeAllowlist {
    fn id(&self) -> &'static str {
        ID
    }

    fn explanation(&self) -> &'static str {
        "`unsafe` is permitted only in allowlisted files (crates/core/src/pool.rs and the \
         audited syscall shim crates/net/src/sys.rs); everywhere else the workspace stays \
         100% safe Rust"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if ALLOWED.contains(&file.rel.as_str()) {
            return;
        }
        let in_scope = file.rel.ends_with(".rs") || crate::rules::is_fixture(&file.rel);
        if !in_scope {
            return;
        }
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind == TokKind::Ident && t.text == "unsafe" {
                let context = match file.text(i + 1) {
                    "{" => "block",
                    "fn" => "fn",
                    "impl" => "impl",
                    "trait" => "trait",
                    _ => "keyword",
                };
                out.push(Finding {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: ID,
                    message: format!(
                        "`unsafe` {context} outside the allowlist — the workspace is safe Rust \
                         by policy outside the audited sites; move the code into an allowlisted \
                         module or justify an allowlist entry in rules/unsafe_allowlist.rs",
                    ),
                });
            }
        }
    }
}
