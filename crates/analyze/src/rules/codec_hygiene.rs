//! `codec-hygiene`: wire decode paths must be panic-free on hostile
//! input.
//!
//! Scope: fns in `crates/net/src/` whose signature mentions
//! `DecodeError` or `FrameError` — the typed-error decode surface of
//! PR 2's protocol layer. A panic anywhere on that surface is a
//! remote denial of service: one malformed frame kills the worker
//! thread serving the connection.
//!
//! Checks inside each decode fn body:
//!
//! * no `unwrap` / `expect` / `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` / `assert*!` (including `debug_assert*!` — debug
//!   builds must survive hostile input too);
//! * no direct indexing (`expr[...]`) — use `get`/`get_mut`/pattern
//!   destructuring, which return typed errors instead of panicking;
//! * no truncating `as` casts (`as u8/u16/u32/i*`) — widening casts
//!   (`as usize`/`as u64`/`as u128`) are fine, narrowing must go
//!   through `try_from` so out-of-range wire values become errors;
//! * every `Vec::with_capacity(n)` where `n` came off the wire must be
//!   preceded by a bounds check — either `.min(...)` in the argument or
//!   a `self_inconsistent_count(...)` guard since the previous
//!   allocation — so a hostile count cannot balloon memory before the
//!   payload is even long enough to contain the items.

use crate::model::{SourceFile, TokKind};
use crate::rules::{Finding, Rule};

pub struct CodecHygiene;

const ID: &str = "codec-hygiene";

/// Macro names whose invocation is a panic path.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Cast targets that can drop bits of a wider wire integer.
const TRUNCATING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "i64", "isize"];

impl Rule for CodecHygiene {
    fn id(&self) -> &'static str {
        ID
    }

    fn explanation(&self) -> &'static str {
        "wire decode paths (fns returning DecodeError/FrameError) must be panic-free: no \
         unwrap/expect/panics, no direct indexing, no truncating `as` casts, wire counts \
         bounds-checked before Vec::with_capacity"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !file.rel.starts_with("crates/net/src/") && !crate::rules::is_fixture(&file.rel) {
            return;
        }
        for f in &file.fns {
            let sig = f.sig();
            let is_decode =
                sig.clone().any(|i| matches!(file.text(i), "DecodeError" | "FrameError"));
            if !is_decode || f.body().is_empty() {
                continue;
            }
            let body = f.body();
            let mut finding = |line: u32, message: String| {
                out.push(Finding { file: file.rel.clone(), line, rule: ID, message });
            };

            let mut guards_available = 0usize;
            for i in body.clone() {
                let text = file.text(i);
                match text {
                    "unwrap" | "expect" if file.is_seq(i.wrapping_sub(1), &["."]) => {
                        if file.text(i + 1) == "(" {
                            finding(
                                file.line(i),
                                format!(
                                    "decode fn `{}` calls `.{text}(...)` — a hostile frame \
                                     must surface as a typed DecodeError, not a panic",
                                    f.name
                                ),
                            );
                        }
                    }
                    "[" => {
                        // Postfix `[` = indexing: previous token ends an
                        // expression. `let [b] = ...` destructuring and
                        // attribute `#[...]`/type `&[u8]` positions do not.
                        let prev_i = i.wrapping_sub(1);
                        let prev = file.text(prev_i);
                        let prev_is_expr = prev == ")"
                            || prev == "]"
                            || (file.toks.get(prev_i).map(|t| t.kind) == Some(TokKind::Ident)
                                && !matches!(prev, "let" | "mut" | "box" | "ref" | "in" | "as"));
                        if prev_is_expr {
                            finding(
                                file.line(i),
                                format!(
                                    "decode fn `{}` indexes directly (`{prev}[...]`) — use \
                                     `get`/`get_mut` or destructuring so out-of-range wire \
                                     data errors instead of panicking",
                                    f.name
                                ),
                            );
                        }
                    }
                    "as" if file.toks.get(i).map(|t| t.kind) == Some(TokKind::Ident) => {
                        let target = file.text(i + 1);
                        if TRUNCATING_TARGETS.contains(&target) {
                            finding(
                                file.line(i),
                                format!(
                                    "decode fn `{}` uses a truncating cast `as {target}` — \
                                     narrow with `try_from` so out-of-range values become \
                                     typed errors",
                                    f.name
                                ),
                            );
                        }
                    }
                    "self_inconsistent_count" if file.text(i + 1) == "(" => {
                        guards_available += 1;
                    }
                    "with_capacity" if file.text(i + 1) == "(" => {
                        let close = file.matching_close(i + 1);
                        let arg_has_min = (i + 2..close).any(|j| file.text(j) == "min");
                        if arg_has_min {
                            continue;
                        }
                        if guards_available > 0 {
                            guards_available -= 1;
                        } else {
                            finding(
                                file.line(i),
                                format!(
                                    "decode fn `{}` allocates `with_capacity` from an \
                                     unchecked wire count — clamp with `.min(...)` or guard \
                                     with `self_inconsistent_count(...)` first",
                                    f.name
                                ),
                            );
                        }
                    }
                    _ => {
                        if PANIC_MACROS.contains(&text)
                            && file.text(i + 1) == "!"
                            && !file.is_seq(i.wrapping_sub(1), &["."])
                        {
                            finding(
                                file.line(i),
                                format!(
                                    "decode fn `{}` invokes `{text}!` — hostile input must \
                                     never reach a panic path, even in debug builds",
                                    f.name
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}
