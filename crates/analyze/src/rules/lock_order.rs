//! `lock-order`: nested lock acquisitions respect the declared
//! workspace order.
//!
//! Every mutex/rwlock field in the workspace is assigned a rank in
//! [`LOCK_RANKS`]; while a guard on rank *r* is held, only locks of
//! rank `> r` may be acquired. The table encodes the one ordering the
//! engine already relies on — writer lock → durability sink → snapshot
//! install — and extends it to every other lock so new nesting is
//! forced to pick (and document) a position instead of improvising one.
//!
//! Analysis is a per-function linear scan with three ingredients:
//!
//! * **held guards** — a lock is *held* past its statement only when
//!   bound exactly as `let [mut] name = <chain>.lock()/.read()/.write()
//!   .unwrap()/.expect(..);`. A leading `*` deref, a continued method
//!   chain, or any other consuming context makes the guard a temporary
//!   that dies at the semicolon (`if let` / match scrutinee guards are
//!   deliberately out of scope of the heuristic — the workspace does
//!   not hold locks that way).
//! * **scopes** — a guard dies when the block it was bound in closes,
//!   or at an explicit `drop(name)`.
//! * **same-file calls** — a fixpoint over the file's call graph
//!   propagates each fn's transitively acquired lock set, so
//!   `write_txn` holding `writer` and calling `install()` is checked
//!   against the locks `install` takes.
//!
//! Re-acquiring a held lock is flagged as self-deadlock; acquiring an
//! undeclared field is flagged so the table stays total.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{SourceFile, TokKind};
use crate::rules::{Finding, Rule};

pub struct LockOrder;

const ID: &str = "lock-order";

/// The workspace lock order, lowest rank acquired first. One entry per
/// lock field; the comment states where it lives and why it sits there.
const LOCK_RANKS: &[(&str, u32)] = &[
    // engine: the single-writer mutex is the outermost lock — every
    // mutation path enters here first.
    ("writer", 0),
    // engine: the durability sink slot; write_txn reads it (and the
    // sink appends) while holding `writer`.
    ("durability", 1),
    // store: WAL + snapshot state, locked inside durability appends
    // that run under the engine's writer lock.
    ("inner", 2),
    // engine: tagged result cache, taken during snapshot install while
    // `writer` is held.
    ("results", 3),
    // engine: the published snapshot RwLock — installed after results
    // are staged, still under `writer`.
    ("current", 4),
    // engine: last build report, written at the tail of the install
    // path.
    ("last_build", 5),
    // engine: plan LRU — leaf on the read path, never wraps another
    // lock.
    ("plans", 6),
    // engine stats: latency window — leaf.
    ("latencies_us", 7),
    // obs: trace ring — leaf.
    ("traces", 8),
    // obs: slow-query ring — leaf.
    ("slow", 9),
    // obs: workload counter map — leaf.
    ("workload", 10),
    // net: evaluation jobs queued for the worker pool; pushes and pops
    // are consuming temporaries except the worker's condvar wait, which
    // holds no other lock.
    ("jobs", 11),
    // net: finished evaluations travelling back to the event loop —
    // leaf, touched only as a consuming temporary.
    ("done", 12),
    // core pool: per-item work slots — leaf inside worker bodies.
    ("work", 13),
    // core pool / engine batch: per-item output slots — leaf.
    ("slots", 14),
];

fn rank_of(field: &str) -> Option<u32> {
    LOCK_RANKS.iter().find(|(f, _)| *f == field).map(|&(_, r)| r)
}

/// One detected lock acquisition inside a fn body.
struct Acq {
    /// Token index of the `.` before the lock method.
    dot: usize,
    line: u32,
    /// Resolved lock field (`None` when the receiver chain has no
    /// identifier segment to anchor on).
    field: Option<String>,
    /// `Some(name)` when the statement binds a held guard.
    bound: Option<String>,
}

struct Held {
    name: String,
    field: String,
    rank: u32,
    depth: i64,
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        ID
    }

    fn explanation(&self) -> &'static str {
        "nested lock acquisitions (directly or through same-file calls) must follow the declared \
         rank table (writer → durability → store inner → results → current → last_build → leaf \
         locks); re-entry and undeclared lock fields are flagged"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let in_scope = (file.rel.contains("/src/") && !file.rel.starts_with("crates/shims/"))
            || crate::rules::is_fixture(&file.rel);
        if !in_scope {
            return;
        }

        // Pass 1: per-fn direct lock sets, then close them over the
        // same-file call graph.
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let fn_names: BTreeSet<&str> = file.fns.iter().map(|f| f.name.as_str()).collect();
        for f in &file.fns {
            let d = direct.entry(f.name.clone()).or_default();
            for a in acquisitions(file, f.body()) {
                if let Some(field) = a.field {
                    d.insert(field);
                }
            }
            let c = calls.entry(f.name.clone()).or_default();
            for i in f.body() {
                if let Some(callee) = call_target(file, i, &fn_names) {
                    if callee != f.name {
                        c.insert(callee.to_string());
                    }
                }
            }
        }
        let mut closed = direct.clone();
        loop {
            let mut changed = false;
            for (name, callees) in &calls {
                let mut add = BTreeSet::new();
                for callee in callees {
                    if let Some(locks) = closed.get(callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
                let set = closed.entry(name.clone()).or_default();
                for l in add {
                    changed |= set.insert(l);
                }
            }
            if !changed {
                break;
            }
        }

        // Pass 2: linear scan of each fn with guard lifetimes.
        for f in &file.fns {
            let body = f.body();
            let acqs = acquisitions(file, body.clone());
            let mut next_acq = 0usize;
            let mut held: Vec<Held> = Vec::new();
            let mut depth = 0i64;
            let mut finding = |line: u32, message: String| {
                out.push(Finding { file: file.rel.clone(), line, rule: ID, message });
            };
            for i in body {
                match file.text(i) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        held.retain(|h| h.depth <= depth);
                    }
                    "drop"
                        if file.text(i + 1) == "("
                            && file.text(i + 3) == ")"
                            && file.toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident) =>
                    {
                        let name = file.text(i + 2);
                        held.retain(|h| h.name != name);
                    }
                    _ => {}
                }
                // Direct acquisition at this token?
                if next_acq < acqs.len() && acqs[next_acq].dot == i {
                    let a = &acqs[next_acq];
                    next_acq += 1;
                    let Some(field) = &a.field else {
                        finding(
                            a.line,
                            format!(
                                "fn `{}` acquires a lock through an unresolvable receiver — \
                                 bind the lock to a named field so it can carry a rank",
                                f.name
                            ),
                        );
                        continue;
                    };
                    let Some(rank) = rank_of(field) else {
                        finding(
                            a.line,
                            format!(
                                "fn `{}` locks undeclared field `{field}` — add it to the \
                                 lock-order table (with a rank justification) in \
                                 rules/lock_order.rs",
                                f.name
                            ),
                        );
                        continue;
                    };
                    for h in &held {
                        if h.field == *field {
                            finding(
                                a.line,
                                format!(
                                    "fn `{}` re-acquires `{field}` while already holding it \
                                     (bound as `{}`) — self-deadlock",
                                    f.name, h.name
                                ),
                            );
                        } else if rank <= h.rank {
                            finding(
                                a.line,
                                format!(
                                    "fn `{}` acquires `{field}` (rank {rank}) while holding \
                                     `{}` (rank {}) — violates the declared lock order",
                                    f.name, h.field, h.rank
                                ),
                            );
                        }
                    }
                    if let Some(name) = &a.bound {
                        held.push(Held { name: name.clone(), field: field.clone(), rank, depth });
                    }
                    continue;
                }
                // Call into a same-file fn while holding guards?
                if held.is_empty() {
                    continue;
                }
                if let Some(callee) = call_target(file, i, &fn_names) {
                    if callee == f.name {
                        continue;
                    }
                    let Some(locks) = closed.get(callee) else { continue };
                    for lf in locks {
                        let Some(rank) = rank_of(lf) else { continue };
                        for h in &held {
                            if h.field == *lf {
                                finding(
                                    file.line(i),
                                    format!(
                                        "fn `{}` holds `{}` and calls `{callee}`, which \
                                         (transitively) re-acquires `{lf}` — self-deadlock",
                                        f.name, h.field
                                    ),
                                );
                            } else if rank <= h.rank {
                                finding(
                                    file.line(i),
                                    format!(
                                        "fn `{}` holds `{}` (rank {}) and calls `{callee}`, \
                                         which (transitively) acquires `{lf}` (rank {rank}) — \
                                         violates the declared lock order",
                                        f.name, h.field, h.rank
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Is token `i` a call to one of this file's fns? Matches `name(` as a
/// free call and `self.name(` as a method call; foreign-receiver method
/// calls are excluded (their names only collide with local fns by
/// accident).
fn call_target<'a>(file: &SourceFile, i: usize, fn_names: &BTreeSet<&'a str>) -> Option<&'a str> {
    if file.toks.get(i)?.kind != TokKind::Ident || file.text(i + 1) != "(" {
        return None;
    }
    let name = file.text(i);
    let name = *fn_names.get(name)?;
    let prev = if i == 0 { "" } else { file.text(i - 1) };
    if prev == "fn" {
        return None; // the definition itself
    }
    if prev == "::" {
        return None; // `Other::name(...)` — usually a foreign item
    }
    if prev == "." && !(i >= 2 && file.is_seq(i - 2, &["self", "."])) {
        return None;
    }
    Some(name)
}

/// Finds every lock acquisition in `range`: a
/// `.lock()/.read()/.write()` with empty argument list immediately
/// followed by `.unwrap(`/`.expect(` — the only way this workspace
/// takes locks. Classifies each as held-binding or temporary.
fn acquisitions(file: &SourceFile, range: std::ops::Range<usize>) -> Vec<Acq> {
    let mut out = Vec::new();
    for dot in range {
        if file.text(dot) != "."
            || !matches!(file.text(dot + 1), "lock" | "read" | "write")
            || !file.is_seq(dot + 2, &["(", ")", "."])
            || !matches!(file.text(dot + 5), "unwrap" | "expect")
            || file.text(dot + 6) != "("
        {
            continue;
        }
        let field = lock_field(file, dot).map(|i| file.text(i).to_string());
        // Held binding: `let [mut] name = <chain>...unwrap()/expect(..);`
        let bound = (|| {
            let close = file.matching_close(dot + 6);
            if file.text(close + 1) != ";" {
                return None; // continued chain or expression context
            }
            let cs = chain_start(file, dot)?;
            if cs < 2 || file.text(cs - 1) != "=" {
                return None;
            }
            let name_i = cs - 2;
            if file.toks.get(name_i)?.kind != TokKind::Ident {
                return None;
            }
            let is_let = file.text(name_i.checked_sub(1)?) == "let"
                || (file.text(name_i.checked_sub(1)?) == "mut"
                    && file.text(name_i.checked_sub(2)?) == "let");
            is_let.then(|| file.text(name_i).to_string())
        })();
        out.push(Acq { dot, line: file.line(dot), field, bound });
    }
    out
}

/// Start index of the segment whose last token is at `end`: skips
/// trailing `[...]`/`(...)` groups back to the ident/number they hang
/// off. Returns `None` for non-chain tokens.
fn seg_start(file: &SourceFile, end: usize) -> Option<usize> {
    let mut j = end;
    while let close @ ("]" | ")") = file.text(j) {
        let close = close.to_string();
        let open = if close == "]" { "[" } else { "(" };
        let mut depth = 1i64;
        while depth > 0 {
            j = j.checked_sub(1)?;
            if file.text(j) == close {
                depth += 1;
            } else if file.text(j) == open {
                depth -= 1;
            }
        }
        j = j.checked_sub(1)?;
    }
    matches!(file.toks.get(j)?.kind, TokKind::Ident | TokKind::Num).then_some(j)
}

/// The lock's field name for the acquisition whose method-dot is at
/// `dot`: the nearest identifier segment of the receiver chain, looking
/// through tuple indices (`queue.0`) and skipping a bare `self`.
fn lock_field(file: &SourceFile, dot: usize) -> Option<usize> {
    let mut d = dot;
    loop {
        let s = seg_start(file, d.checked_sub(1)?)?;
        if file.toks.get(s)?.kind == TokKind::Ident && file.text(s) != "self" {
            return Some(s);
        }
        if s == 0 || file.text(s - 1) != "." {
            return None;
        }
        d = s - 1;
    }
}

/// First token of the whole receiver chain ending at `dot`.
fn chain_start(file: &SourceFile, dot: usize) -> Option<usize> {
    let mut d = dot;
    loop {
        let s = seg_start(file, d.checked_sub(1)?)?;
        if s == 0 || file.text(s - 1) != "." {
            return Some(s);
        }
        d = s - 1;
    }
}
