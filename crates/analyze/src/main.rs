//! The `cpqx-analyze` binary: scan the workspace, print findings,
//! exit nonzero when any survive suppression.
//!
//! ```text
//! cpqx-analyze [--json] [--rules] [ROOT]
//! ```
//!
//! * `--json` — machine-readable output for CI;
//! * `--rules` — print the rule catalogue and exit;
//! * `ROOT` — workspace root (default: discovered by walking up from
//!   the current directory, falling back to this crate's grandparent).
//!
//! Exit status: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--rules" => {
                print!("{}", cpqx_analyze::report::rules_text());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: cpqx-analyze [--json] [--rules] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ if !arg.starts_with('-') && root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("cpqx-analyze: unknown argument `{arg}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        cpqx_analyze::find_workspace_root(&cwd)
            .or_else(|| Some(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")))
    });
    let Some(root) = root else {
        eprintln!("cpqx-analyze: cannot determine workspace root");
        return ExitCode::from(2);
    };
    let analysis = match cpqx_analyze::analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cpqx-analyze: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", cpqx_analyze::report::json(&analysis));
    } else {
        print!("{}", cpqx_analyze::report::human(&analysis));
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
