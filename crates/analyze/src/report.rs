//! Rendering an [`Analysis`] for humans and for CI.

use crate::rules::{all_rules, Analysis};

/// Human-readable report: one `file:line: [rule] message` per finding,
/// then a summary line. Mirrors rustc's diagnostic shape so editors
/// pick the locations up.
pub fn human(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if !analysis.findings.is_empty() {
        out.push('\n');
    }
    out.push_str(&format!(
        "cpqx-analyze: {} finding{} in {} file{} ({} suppressed by pragma)\n",
        analysis.findings.len(),
        if analysis.findings.len() == 1 { "" } else { "s" },
        analysis.files,
        if analysis.files == 1 { "" } else { "s" },
        analysis.suppressed.len(),
    ));
    out
}

/// Machine-readable report: a single JSON object with the findings
/// array, scan size and suppression count. Serialized by hand — the
/// workspace is dependency-free and the schema is four fields deep.
pub fn json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            escape(&f.file),
            f.line,
            escape(f.rule),
            escape(&f.message),
        ));
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files\": {},\n  \"suppressed\": {}\n}}\n",
        analysis.files,
        analysis.suppressed.len(),
    ));
    out
}

/// The rule catalogue for `--rules`: id + one-line invariant.
pub fn rules_text() -> String {
    let mut out = String::new();
    for r in all_rules() {
        out.push_str(&format!("{:<18} {}\n", r.id(), r.explanation()));
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn json_escapes_and_shapes() {
        let analysis = Analysis {
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: "cow-seam",
                message: "say \"no\"\nplease".into(),
            }],
            suppressed: vec![],
            files: 2,
        };
        let j = json(&analysis);
        assert!(j.contains(r#""file": "a.rs""#));
        assert!(j.contains(r#""say \"no\"\nplease""#));
        assert!(j.contains("\"files\": 2"));
        let h = human(&analysis);
        assert!(h.starts_with("a.rs:3: [cow-seam]"));
        assert!(h.contains("1 finding in 2 files (0 suppressed by pragma)"));
    }
}
