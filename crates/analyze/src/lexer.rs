//! A minimal Rust lexer with line spans.
//!
//! This is *not* a compiler front end: it produces exactly the structure
//! the rules in [`crate::rules`] need — identifiers, literals and
//! punctuation with the line they start on, plus the comment stream
//! (comments carry the suppression pragmas, see [`crate::model`]). It
//! understands everything that would otherwise desynchronize a token
//! scan: line and (nested) block comments, string/char/byte/raw-string
//! literals with escapes, lifetimes vs. char literals, raw identifiers,
//! and numeric literals with type suffixes. `::` is fused into one token
//! because every rule that matches paths wants it that way; all other
//! punctuation is one token per character.

/// Token classes. Keywords are ordinary [`TokKind::Ident`] tokens — the
/// rules match on text, and a lexer that hard-codes the keyword list
/// would have to chase editions for zero benefit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Num,
    /// String or byte-string literal; `text` keeps the full source form
    /// (quotes included) so it can never collide with an identifier.
    Str,
    /// Char or byte-char literal, full source form.
    Char,
    Punct,
}

/// One token with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block, doc or plain) with the 1-based line it
/// starts on. The text excludes the comment markers.
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated literals or comments do not abort the scan:
/// the remainder of the file is consumed as the open literal, which is
/// the best a diagnostic tool can do with a file rustc would reject.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Advances over `n` chars, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        let start_line = line;
        match c {
            c if c.is_whitespace() => bump!(1),
            '/' if b.get(i + 1) == Some(&'/') => {
                let mut text = String::new();
                bump!(2);
                while i < b.len() && b[i] != '\n' {
                    text.push(b[i]);
                    bump!(1);
                }
                out.comments.push(Comment { text, line: start_line });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut text = String::new();
                let mut depth = 1u32;
                bump!(2);
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        text.push_str("/*");
                        bump!(2);
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        bump!(2);
                    } else {
                        text.push(b[i]);
                        bump!(1);
                    }
                }
                out.comments.push(Comment { text, line: start_line });
            }
            '"' => {
                let text = lex_string(&b, &mut i, &mut line);
                out.toks.push(Tok { kind: TokKind::Str, text, line: start_line });
            }
            'r' | 'b' if starts_prefixed_literal(&b, i) => {
                let text = lex_prefixed_literal(&b, &mut i, &mut line);
                let kind = if text.contains('"') { TokKind::Str } else { TokKind::Char };
                out.toks.push(Tok { kind, text, line: start_line });
            }
            '\'' => {
                // Lifetime (`'a`, `'_`, `'static`) vs char literal
                // (`'x'`, `'\n'`): a lifetime is `'` + ident chars *not*
                // followed by a closing quote.
                let next = b.get(i + 1).copied();
                let is_lifetime = matches!(next, Some(n) if n == '_' || n.is_alphabetic())
                    && b.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    let mut text = String::from("'");
                    bump!(1);
                    while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                        text.push(b[i]);
                        bump!(1);
                    }
                    out.toks.push(Tok { kind: TokKind::Lifetime, text, line: start_line });
                } else {
                    let mut text = String::from("'");
                    bump!(1);
                    while i < b.len() {
                        if b[i] == '\\' {
                            text.push(b[i]);
                            bump!(1);
                            if i < b.len() {
                                text.push(b[i]);
                                bump!(1);
                            }
                        } else if b[i] == '\'' {
                            text.push('\'');
                            bump!(1);
                            break;
                        } else {
                            text.push(b[i]);
                            bump!(1);
                        }
                    }
                    out.toks.push(Tok { kind: TokKind::Char, text, line: start_line });
                }
            }
            c if c == '_' || c.is_alphabetic() => {
                let mut text = String::new();
                // Raw identifier `r#name` lexes as `name`.
                if c == 'r' && b.get(i + 1) == Some(&'#') && ident_start(b.get(i + 2)) {
                    bump!(2);
                }
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    text.push(b[i]);
                    bump!(1);
                }
                out.toks.push(Tok { kind: TokKind::Ident, text, line: start_line });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    // `1.5` continues the number, `1..n` and `1.method()`
                    // do not.
                    text.push(b[i]);
                    bump!(1);
                    if i < b.len()
                        && b[i] == '.'
                        && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && !text.contains('.')
                    {
                        text.push('.');
                        bump!(1);
                    }
                    // Exponent sign: `1e-3`.
                    if i > 0
                        && (b[i - 1] == 'e' || b[i - 1] == 'E')
                        && text.chars().next().is_some_and(|f| f.is_ascii_digit())
                        && matches!(b.get(i), Some('+') | Some('-'))
                        && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                    {
                        text.push(b[i]);
                        bump!(1);
                    }
                }
                out.toks.push(Tok { kind: TokKind::Num, text, line: start_line });
            }
            ':' if b.get(i + 1) == Some(&':') => {
                bump!(2);
                out.toks.push(Tok { kind: TokKind::Punct, text: "::".into(), line: start_line });
            }
            _ => {
                bump!(1);
                out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line: start_line });
            }
        }
    }
    out
}

fn ident_start(c: Option<&char>) -> bool {
    matches!(c, Some(c) if *c == '_' || c.is_alphabetic())
}

/// Does `b[i..]` start a raw/byte string or byte char (`r"`, `r#"`,
/// `b"`, `br"`, `br#"`, `b'`)?
fn starts_prefixed_literal(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    // `b"..."` or `b'x'` (plain byte literals).
    j > i && matches!(b.get(j), Some('"') | Some('\''))
}

/// Consumes a prefixed literal starting at `i` (see
/// [`starts_prefixed_literal`]) and returns its full source text.
fn lex_prefixed_literal(b: &[char], i: &mut usize, line: &mut u32) -> String {
    let mut text = String::new();
    let bump = |i: &mut usize, line: &mut u32, text: &mut String| {
        if *i < b.len() {
            if b[*i] == '\n' {
                *line += 1;
            }
            text.push(b[*i]);
            *i += 1;
        }
    };
    if b.get(*i) == Some(&'b') {
        bump(i, line, &mut text);
    }
    if b.get(*i) == Some(&'r') {
        bump(i, line, &mut text);
        let mut hashes = 0usize;
        while b.get(*i) == Some(&'#') {
            hashes += 1;
            bump(i, line, &mut text);
        }
        bump(i, line, &mut text); // opening quote
        loop {
            if *i >= b.len() {
                break;
            }
            if b[*i] == '"' {
                let tail_hashes = (1..=hashes).all(|h| b.get(*i + h) == Some(&'#'));
                if tail_hashes {
                    bump(i, line, &mut text);
                    for _ in 0..hashes {
                        bump(i, line, &mut text);
                    }
                    break;
                }
            }
            bump(i, line, &mut text);
        }
        return text;
    }
    // `b"..."` / `b'x'`: delegate to the escaped scanners.
    match b.get(*i) {
        Some('"') => {
            let inner = lex_string(b, i, line);
            text.push_str(&inner);
        }
        Some('\'') => {
            bump(i, line, &mut text);
            while *i < b.len() {
                if b[*i] == '\\' {
                    bump(i, line, &mut text);
                    bump(i, line, &mut text);
                } else if b[*i] == '\'' {
                    bump(i, line, &mut text);
                    break;
                } else {
                    bump(i, line, &mut text);
                }
            }
        }
        _ => {}
    }
    text
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// full source text with quotes.
fn lex_string(b: &[char], i: &mut usize, line: &mut u32) -> String {
    let mut text = String::from("\"");
    *i += 1;
    while *i < b.len() {
        let c = b[*i];
        if c == '\n' {
            *line += 1;
        }
        if c == '\\' {
            text.push(c);
            *i += 1;
            if *i < b.len() {
                if b[*i] == '\n' {
                    *line += 1;
                }
                text.push(b[*i]);
                *i += 1;
            }
        } else if c == '"' {
            text.push('"');
            *i += 1;
            break;
        } else {
            text.push(c);
            *i += 1;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            texts("fn foo(a: u32) -> &'a [u8] { a[0] }"),
            [
                "fn", "foo", "(", "a", ":", "u32", ")", "-", ">", "&", "'a", "[", "u8", "]", "{",
                "a", "[", "0", "]", "}"
            ]
        );
    }

    #[test]
    fn paths_fuse_double_colon() {
        assert_eq!(texts("Arc::make_mut(x)"), ["Arc", "::", "make_mut", "(", "x", ")"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("let a = 1; // trailing\n/* block\nspans */ let b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " trailing");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.toks.last().unwrap().line, 3);
    }

    #[test]
    fn strings_chars_lifetimes_do_not_desync() {
        let toks = texts(r#"let s = "a // not a comment"; let c = '}'; let l: &'static str = x;"#);
        assert!(toks.contains(&"\"a // not a comment\"".to_string()));
        assert!(toks.contains(&"'}'".to_string()));
        assert!(toks.contains(&"'static".to_string()));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = texts(r####"let a = r#"quote " inside"#; let b = "esc \" q"; let c = '\'';"####);
        assert_eq!(toks.iter().filter(|t| t.starts_with('r') && t.contains('"')).count(), 1);
        assert!(toks.contains(&r#""esc \" q""#.to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.toks[0].text, "fn");
    }

    #[test]
    fn numbers_ranges_and_floats() {
        assert_eq!(texts("0..n"), ["0", ".", ".", "n"]);
        assert_eq!(texts("1.5e-3_f64"), ["1.5e-3_f64"]);
        assert_eq!(texts("x.0"), ["x", ".", "0"]);
    }
}
