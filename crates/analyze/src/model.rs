//! The per-file structure rules operate on: the token stream, extracted
//! function items (signature + body token ranges), and parsed
//! `cpqx-analyze: allow(...)` suppression pragmas.

pub use crate::lexer::TokKind;
use crate::lexer::{lex, Comment, Tok};

/// One `fn` item. `sig` spans from the `fn` keyword to the body's opening
/// brace (exclusive); `body` spans the tokens between the braces
/// (exclusive on both ends). Bodiless fns (trait methods, `extern`
/// declarations) have an empty body range.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's `{` (== `body_end` when bodiless).
    pub body_start: usize,
    /// Token index one past the body's `}`.
    pub body_end: usize,
}

impl FnItem {
    /// Signature token range (excludes the opening brace).
    pub fn sig(&self) -> std::ops::Range<usize> {
        self.sig_start..self.body_start
    }

    /// Body token range, braces excluded.
    pub fn body(&self) -> std::ops::Range<usize> {
        if self.body_start == self.body_end {
            return self.body_start..self.body_start;
        }
        self.body_start + 1..self.body_end - 1
    }
}

/// One parsed `// cpqx-analyze: allow(<rule>): <justification>` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub rule: String,
    pub justification: String,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Lines the pragma covers: its own line and, for an own-line
    /// comment, the next line carrying a token.
    pub covers: Vec<u32>,
}

/// The analyzed form of one source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub fns: Vec<FnItem>,
    pub pragmas: Vec<Pragma>,
}

/// The marker every suppression pragma starts with.
pub const PRAGMA_MARKER: &str = "cpqx-analyze:";

impl SourceFile {
    pub fn parse(rel: String, src: &str) -> SourceFile {
        let lexed = lex(src);
        let fns = extract_fns(&lexed.toks);
        let pragmas = extract_pragmas(&lexed.comments, &lexed.toks);
        SourceFile { rel, toks: lexed.toks, comments: lexed.comments, fns, pragmas }
    }

    /// Text of token `i`, or `""` past the end.
    pub fn text(&self, i: usize) -> &str {
        self.toks.get(i).map_or("", |t| t.text.as_str())
    }

    /// Line of token `i` (0 past the end).
    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Does the token sequence at `at` match `pat` textually?
    pub fn is_seq(&self, at: usize, pat: &[&str]) -> bool {
        pat.iter().enumerate().all(|(j, p)| {
            self.toks.get(at + j).is_some_and(|t| t.text == *p && t.kind != TokKind::Str)
        })
    }

    /// All positions in `range` where `pat` matches.
    pub fn find_seq(&self, range: std::ops::Range<usize>, pat: &[&str]) -> Vec<usize> {
        range.filter(|&i| self.is_seq(i, pat)).collect()
    }

    /// Does any position in `range` match `pat`?
    pub fn contains_seq(&self, range: std::ops::Range<usize>, pat: &[&str]) -> bool {
        range.into_iter().any(|i| self.is_seq(i, pat))
    }

    /// The innermost fn whose item range contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.sig_start <= i && i < f.body_end)
            .min_by_key(|f| f.body_end - f.sig_start)
    }

    /// Index of the matching `)`/`]`/`}` for the opener at `open`
    /// (which must be one), or `toks.len()` if unbalanced.
    pub fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for i in open..self.toks.len() {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.toks.len()
    }

    /// Walks backward from `i` (exclusive) to the base identifier of the
    /// receiver chain ending there, skipping one `[...]`/`(...)` group
    /// per step: for `self.a.b[c].m` with `i` at `.m`'s dot, returns the
    /// index of `b`. Returns `None` when the previous token is not part
    /// of a receiver chain.
    pub fn receiver_field(&self, i: usize) -> Option<usize> {
        let mut j = i.checked_sub(1)?;
        while let close @ ("]" | ")") = self.text(j) {
            // Skip the bracket group to its opener.
            let close = close.to_string();
            let open = if close == "]" { "[" } else { "(" };
            let mut depth = 1i64;
            while depth > 0 {
                j = j.checked_sub(1)?;
                if self.text(j) == close {
                    depth += 1;
                } else if self.text(j) == open {
                    depth -= 1;
                }
            }
            j = j.checked_sub(1)?;
        }
        (self.toks.get(j).map(|t| t.kind) == Some(TokKind::Ident)).then_some(j)
    }
}

/// Extracts every `fn` item (including nested ones) by scanning for the
/// `fn` keyword and matching the body braces. `fn` as a pointer-type
/// (`fn(..) -> ..`) has no name token after it and is skipped.
fn extract_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "fn" || toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` pointer type or malformed
        }
        // Find the body `{` (or `;` for a bodiless declaration) at zero
        // paren/bracket depth. Angle brackets are not tracked: generic
        // argument lists contain neither `{` nor `;`.
        let mut depth = 0i64;
        let mut body_start = None;
        for (j, t) in toks.iter().enumerate().skip(i + 2) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let (body_start, body_end) = match body_start {
            None => {
                fns.push(FnItem {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    sig_start: i,
                    body_start: i + 2,
                    body_end: i + 2,
                });
                continue;
            }
            Some(bs) => {
                let mut d = 0i64;
                let mut end = toks.len();
                for (j, t) in toks.iter().enumerate().skip(bs) {
                    match t.text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d -= 1;
                            if d == 0 {
                                end = j + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                (bs, end)
            }
        };
        fns.push(FnItem {
            name: name_tok.text.clone(),
            line: toks[i].line,
            sig_start: i,
            body_start,
            body_end,
        });
    }
    fns
}

/// Parses suppression pragmas out of the comment stream. Malformed
/// pragmas (no rule, missing justification) still produce a [`Pragma`]
/// with an empty field — the `pragma` meta-rule reports them; silently
/// ignoring a typo'd suppression would be the worst possible failure
/// mode for this tool.
fn extract_pragmas(comments: &[Comment], toks: &[Tok]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) are prose —
        // they may *describe* the pragma syntax without invoking it.
        // Their extra marker char survives as the text's first char.
        if matches!(c.text.chars().next(), Some('/') | Some('!') | Some('*')) {
            continue;
        }
        let Some(pos) = c.text.find(PRAGMA_MARKER) else { continue };
        let rest = c.text[pos + PRAGMA_MARKER.len()..].trim();
        let (rule, justification) = match rest.strip_prefix("allow(") {
            Some(after) => match after.split_once(')') {
                Some((rule, tail)) => {
                    let j = tail.trim_start().strip_prefix(':').unwrap_or("").trim();
                    (rule.trim().to_string(), j.to_string())
                }
                None => (String::new(), String::new()),
            },
            None => (String::new(), String::new()),
        };
        // Coverage: the pragma's own line, plus — when no token shares
        // that line (own-line comment) — the next line carrying a token.
        let mut covers = vec![c.line];
        let own_line_code = toks.iter().any(|t| t.line == c.line);
        if !own_line_code {
            if let Some(next) = toks.iter().map(|t| t.line).filter(|&l| l > c.line).min() {
                covers.push(next);
            }
        }
        out.push(Pragma { rule, justification, line: c.line, covers });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_extraction_spans_bodies() {
        let f = SourceFile::parse(
            "t.rs".into(),
            "impl X { fn a(&self) -> u32 { if x { y } else { z } } }\nfn b();",
        );
        assert_eq!(f.fns.len(), 2);
        let a = &f.fns[0];
        assert_eq!(a.name, "a");
        assert_eq!(f.text(a.body_start), "{");
        assert_eq!(f.text(a.body_end - 1), "}");
        assert_eq!(f.text(a.body_end), "}"); // impl's closing brace
        assert_eq!(f.fns[1].name, "b");
        assert!(f.fns[1].body().is_empty());
    }

    #[test]
    fn nested_fns_and_innermost_lookup() {
        let f = SourceFile::parse("t.rs".into(), "fn outer() { fn inner() { body(); } tail(); }");
        assert_eq!(f.fns.len(), 2);
        let body_call = f.find_seq(0..f.toks.len(), &["body"])[0];
        assert_eq!(f.enclosing_fn(body_call).unwrap().name, "inner");
        let tail_call = f.find_seq(0..f.toks.len(), &["tail"])[0];
        assert_eq!(f.enclosing_fn(tail_call).unwrap().name, "outer");
    }

    #[test]
    fn receiver_chains() {
        let f = SourceFile::parse("t.rs".into(), "self.counts[bucket(v)].fetch_add(1, o); x.y();");
        let dots = f.find_seq(0..f.toks.len(), &[".", "fetch_add"]);
        let base = f.receiver_field(dots[0]).unwrap();
        assert_eq!(f.text(base), "counts");
        let dots = f.find_seq(0..f.toks.len(), &[".", "y"]);
        assert_eq!(f.text(f.receiver_field(dots[0]).unwrap()), "x");
    }

    #[test]
    fn pragma_parsing_and_coverage() {
        let src = "\
// cpqx-analyze: allow(cow-seam): constructor fills fresh chunks only\n\
fn build() {}\n\
let x = 1; // cpqx-analyze: allow(lock-order): leaf lock, never nested\n\
// cpqx-analyze: allow(bad syntax\n";
        let f = SourceFile::parse("t.rs".into(), src);
        assert_eq!(f.pragmas.len(), 3);
        assert_eq!(f.pragmas[0].rule, "cow-seam");
        assert!(f.pragmas[0].covers.contains(&2));
        assert_eq!(f.pragmas[1].covers, vec![3]);
        assert!(f.pragmas[2].rule.is_empty());
    }
}
