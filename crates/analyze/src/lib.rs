//! cpqx-analyze — offline static analysis for the cpqx workspace.
//!
//! The rules encode invariants the compiler cannot see and `clippy`
//! does not know about, because they are *ours*: the COW/CSR
//! invalidation discipline from PR 8, the panic-free decode surface
//! from PR 2, the atomic-ordering classification behind the obs and
//! server counters, the engine's lock order and the no-`unsafe`
//! policy. Each is checked by a token-level scan — no `syn`, no
//! dependencies — precise enough to anchor diagnostics to a line and
//! honest enough to be suppressible only with a written justification.
//!
//! Run it two ways:
//!
//! * `cargo run -p cpqx-analyze` (add `--json` for CI) — scans the
//!   workspace, exits nonzero on findings;
//! * `cargo test -q` — the crate's integration test runs the same scan,
//!   so tier-1 CI gates on a clean workspace.
//!
//! See [`rules`] for the rule table, the
//! `// cpqx-analyze: allow(<rule>): <why>` pragma grammar, and how to
//! add a rule.

pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use model::SourceFile;
use rules::Analysis;

/// Directory names never descended into during a workspace scan.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Collects every `.rs` file under `root` (skipping build output and
/// the analyzer's own rule fixtures) as workspace-relative paths.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path);
                let rel_str = rel_string(rel);
                // Fixtures are deliberately rule-violating inputs for
                // the analyzer's own tests.
                if !rel_str.contains("tests/fixtures/") {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Parses one file into the analyzed form, with a `root`-relative path.
pub fn load_source(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
    let src = std::fs::read_to_string(path)?;
    let rel = rel_string(path.strip_prefix(root).unwrap_or(path));
    Ok(SourceFile::parse(rel, &src))
}

/// Scans the workspace rooted at `root` and runs every rule.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for path in collect_sources(root)? {
        files.push(load_source(root, &path)?);
    }
    Ok(rules::run(&files))
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn rel_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
