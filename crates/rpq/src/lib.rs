//! Regular path queries (RPQ) on the CPQx substrate.
//!
//! RPQ is the *complementary* language to CPQ in the paper's taxonomy
//! (Sec. II, Table I): regular expressions over edge labels, with
//! disjunction and Kleene star but no conjunction or cycles. The paper's
//! concluding remarks call for "query compilation and optimization
//! strategies for CPQ combined with other languages such as RPQ" — this
//! crate is that bridge:
//!
//! * [`ast`] — the RPQ algebra (`ℓ`, `ℓ⁻¹`, concatenation, alternation,
//!   `*`, `+`, `?`, `ε`) with a text parser extending the CPQ syntax,
//! * [`automaton`] — Thompson construction to an ε-NFA,
//! * [`eval`] — two evaluators: the classical product-graph BFS
//!   ([`eval::eval_product`], the reference), and an index-accelerated
//!   algebraic evaluator ([`eval::IndexRpqEngine`]) that chunks
//!   concatenation runs into CPQx `Il2c` lookups (exactly like the CPQ
//!   planner) and computes closures by semi-naive fixpoint over the
//!   indexed relations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod automaton;
pub mod eval;

pub use ast::{parse_rpq, Rpq};
pub use automaton::Nfa;
pub use eval::{eval_product, IndexRpqEngine};
