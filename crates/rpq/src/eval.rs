//! RPQ evaluation: reference product-graph BFS and the index-accelerated
//! algebraic evaluator.

use crate::ast::Rpq;
use crate::automaton::Nfa;
use cpqx_core::CpqxIndex;
use cpqx_graph::{ExtLabel, Graph, LabelSeq, Pair};
use cpqx_query::ops;

/// Reference evaluator: BFS over the product of the graph and the ε-NFA,
/// from every source vertex. Returns the normalized set of pairs `(v, u)`
/// such that some path from `v` to `u` spells a word of the language.
pub fn eval_product(g: &Graph, r: &Rpq) -> Vec<Pair> {
    let nfa = Nfa::compile(r);
    let adj = nfa.labeled_adjacency();
    let mut out = Vec::new();
    for v in g.vertices() {
        // Visited (vertex, state) pairs.
        let mut seen = std::collections::HashSet::new();
        let mut frontier: Vec<(u32, u32)> = Vec::new();
        for s in nfa.epsilon_closure(&[nfa.start]) {
            if seen.insert((v, s)) {
                frontier.push((v, s));
            }
        }
        while let Some((u, s)) = frontier.pop() {
            if s == nfa.accept {
                out.push(Pair::new(v, u));
            }
            for &(l, s2) in &adj[s as usize] {
                for &(_, t) in g.neighbors(u, l) {
                    for s3 in nfa.epsilon_closure(&[s2]) {
                        if seen.insert((t, s3)) {
                            frontier.push((t, s3));
                        }
                    }
                }
            }
        }
    }
    cpqx_graph::pair::normalize(&mut out);
    out
}

/// Index-accelerated RPQ evaluation: the regex is evaluated bottom-up as
/// relational algebra over normalized pair sets, with two accelerations
/// borrowed from the CPQ machinery:
///
/// * maximal concatenation runs of labels become `Il2c` lookups of length
///   ≤ k (the same chunking the CPQ planner performs, Fig. 4), and
/// * `R*` / `R+` are computed by **semi-naive fixpoint**: only the delta of
///   the previous round is re-joined.
///
/// This is the "CPQx inside an RPQ engine" pipeline the paper's conclusion
/// sketches.
pub struct IndexRpqEngine<'i> {
    index: &'i CpqxIndex,
}

impl<'i> IndexRpqEngine<'i> {
    /// Creates an engine over a built CPQ-aware index.
    pub fn new(index: &'i CpqxIndex) -> Self {
        IndexRpqEngine { index }
    }

    /// Evaluates `r` on `g`.
    pub fn evaluate(&self, g: &Graph, r: &Rpq) -> Vec<Pair> {
        match r {
            Rpq::Epsilon => ops::all_loops(g),
            Rpq::Label(l) => self.lookup_seq(&LabelSeq::single(*l)),
            Rpq::Concat(..) => {
                // Flatten the concat chain, chunk label runs, join.
                let mut factors = Vec::new();
                flatten_concat(r, &mut factors);
                let mut relations: Vec<Vec<Pair>> = Vec::new();
                let mut run: Vec<ExtLabel> = Vec::new();
                for f in factors {
                    match f {
                        Rpq::Label(l) => run.push(*l),
                        Rpq::Epsilon => {}
                        other => {
                            self.flush_run(&mut run, &mut relations);
                            relations.push(self.evaluate(g, other));
                        }
                    }
                }
                self.flush_run(&mut run, &mut relations);
                let mut it = relations.into_iter();
                let Some(mut acc) = it.next() else {
                    return ops::all_loops(g); // all-ε concat
                };
                let mut ctx = ops::EvalContext::new();
                for rel in it {
                    if acc.is_empty() {
                        return Vec::new();
                    }
                    acc = ctx.join_pairs(&acc, &rel);
                }
                acc
            }
            Rpq::Alt(a, b) => {
                let mut left = self.evaluate(g, a);
                let right = self.evaluate(g, b);
                left.extend_from_slice(&right);
                cpqx_graph::pair::normalize(&mut left);
                left
            }
            Rpq::Star(a) => {
                let base = self.evaluate(g, a);
                let mut closure = transitive_closure(&base);
                closure.extend(ops::all_loops(g));
                cpqx_graph::pair::normalize(&mut closure);
                closure
            }
            Rpq::Plus(a) => {
                let base = self.evaluate(g, a);
                let mut closure = transitive_closure(&base);
                if a.nullable() {
                    closure.extend(ops::all_loops(g));
                    cpqx_graph::pair::normalize(&mut closure);
                }
                closure
            }
            Rpq::Opt(a) => {
                let mut rel = self.evaluate(g, a);
                rel.extend(ops::all_loops(g));
                cpqx_graph::pair::normalize(&mut rel);
                rel
            }
        }
    }

    fn flush_run(&self, run: &mut Vec<ExtLabel>, relations: &mut Vec<Vec<Pair>>) {
        if run.is_empty() {
            return;
        }
        // Greedy longest-indexed-prefix chunking, like the CPQ planner.
        let mut i = 0;
        while i < run.len() {
            let max_len = self.index.k().min(run.len() - i).min(cpqx_graph::MAX_SEQ_LEN);
            let mut taken = 1;
            for len in (2..=max_len).rev() {
                let seq = LabelSeq::from_slice(&run[i..i + len]);
                if self.index.is_indexed(&seq) {
                    taken = len;
                    break;
                }
            }
            relations.push(self.lookup_seq(&LabelSeq::from_slice(&run[i..i + taken])));
            i += taken;
        }
        run.clear();
    }

    fn lookup_seq(&self, seq: &LabelSeq) -> Vec<Pair> {
        let mut out = Vec::new();
        for &c in self.index.lookup(seq) {
            out.extend_from_slice(self.index.class_pairs(c));
        }
        out.sort_unstable();
        out
    }
}

/// Semi-naive transitive closure `R⁺` of a normalized relation: each round
/// joins only the newly discovered delta against the base.
pub fn transitive_closure(base: &[Pair]) -> Vec<Pair> {
    let mut all: Vec<Pair> = base.to_vec();
    let mut delta: Vec<Pair> = base.to_vec();
    let mut ctx = ops::EvalContext::new();
    while !delta.is_empty() {
        let step = ctx.join_pairs(&delta, base);
        // delta = step \ all
        let mut fresh = Vec::new();
        for p in step {
            if all.binary_search(&p).is_err() {
                fresh.push(p);
            }
        }
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.is_empty() {
            break;
        }
        all.extend_from_slice(&fresh);
        all.sort_unstable();
        delta = fresh;
    }
    all
}

fn flatten_concat<'r>(r: &'r Rpq, out: &mut Vec<&'r Rpq>) {
    match r {
        Rpq::Concat(a, b) => {
            flatten_concat(a, out);
            flatten_concat(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_rpq;
    use cpqx_graph::generate;

    fn check(g: &Graph, idx: &CpqxIndex, expr: &str) {
        let r = parse_rpq(expr, g).unwrap();
        let reference = eval_product(g, &r);
        let accelerated = IndexRpqEngine::new(idx).evaluate(g, &r);
        assert_eq!(accelerated, reference, "expr {expr}");
    }

    #[test]
    fn agree_on_gex() {
        let g = generate::gex();
        let idx = CpqxIndex::build(&g, 2);
        for expr in [
            "f",
            "f^-1",
            "f . f",
            "f . v",
            "f | v",
            "f*",
            "f+",
            "f?",
            "f* . v",
            "(f | v)*",
            "(f . f)* | v",
            "f . (v | f) . f^-1",
            "eps",
            "(f^-1)*",
            "f . f . f . f . f",
        ] {
            check(&g, &idx, expr);
        }
    }

    #[test]
    fn star_on_cycle_is_total_within_component() {
        let g = generate::cycle(5, "f");
        let idx = CpqxIndex::build(&g, 2);
        let r = parse_rpq("f*", &g).unwrap();
        let result = IndexRpqEngine::new(&idx).evaluate(&g, &r);
        // Every ordered pair is reachable on a directed cycle.
        assert_eq!(result.len(), 25);
        assert_eq!(result, eval_product(&g, &r));
    }

    #[test]
    fn plus_excludes_identity_unless_cyclic() {
        let g = generate::labeled_path(&["a", "a"]);
        let idx = CpqxIndex::build(&g, 2);
        let r = parse_rpq("a+", &g).unwrap();
        let result = IndexRpqEngine::new(&idx).evaluate(&g, &r);
        assert_eq!(result, vec![Pair::new(0, 1), Pair::new(0, 2), Pair::new(1, 2)]);
        assert_eq!(result, eval_product(&g, &r));
    }

    #[test]
    fn agree_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for seed in 0..3u64 {
            let cfg = generate::RandomGraphConfig::social(30, 110, 2, seed);
            let g = generate::random_graph(&cfg);
            let idx = CpqxIndex::build(&g, 2);
            // Random expressions from a small template pool.
            for _ in 0..12 {
                let l = |rng: &mut rand::rngs::StdRng| {
                    Rpq::Label(ExtLabel(rng.gen_range(0..g.ext_label_count())))
                };
                let a = l(&mut rng);
                let b = l(&mut rng);
                let c = l(&mut rng);
                let expr = match rng.gen_range(0..6) {
                    0 => a.then(b).then(c),
                    1 => a.or(b).star(),
                    2 => a.then(b.or(c)),
                    3 => a.plus().then(b.opt()),
                    4 => a.then(b).star().then(c),
                    _ => a.opt().or(b.then(c)),
                };
                let reference = eval_product(&g, &expr);
                let accelerated = IndexRpqEngine::new(&idx).evaluate(&g, &expr);
                assert_eq!(accelerated, reference, "seed {seed} expr {expr:?}");
            }
        }
    }

    #[test]
    fn interest_aware_index_also_works() {
        let g = generate::gex();
        let f = g.label_named("f").unwrap();
        let idx =
            CpqxIndex::build_interest_aware(&g, 2, [LabelSeq::from_slice(&[f.fwd(), f.fwd()])]);
        for expr in ["f . f . v", "f* . v", "(f . f)+"] {
            check(&g, &idx, expr);
        }
    }

    #[test]
    fn closure_is_idempotent() {
        let base = vec![Pair::new(0, 1), Pair::new(1, 2), Pair::new(2, 0)];
        let once = transitive_closure(&base);
        let twice = transitive_closure(&once);
        assert_eq!(once, twice);
        assert_eq!(once.len(), 9, "3-cycle closure is total");
    }
}
