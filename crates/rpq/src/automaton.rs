//! Thompson construction: RPQ → ε-NFA.
//!
//! The automaton is the classical evaluation vehicle for RPQ (DataGuides,
//! A[k]- and T-indexes all reason over it, Table I); here it drives the
//! reference product-graph evaluator.

use crate::ast::Rpq;
use cpqx_graph::ExtLabel;

/// A labeled ε-NFA with a single start and a single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Number of states.
    pub states: usize,
    /// Labeled transitions `(from, label, to)`.
    pub transitions: Vec<(u32, ExtLabel, u32)>,
    /// ε-transitions `(from, to)`.
    pub epsilons: Vec<(u32, u32)>,
    /// Start state.
    pub start: u32,
    /// Accept state.
    pub accept: u32,
}

impl Nfa {
    /// Thompson construction.
    pub fn compile(r: &Rpq) -> Nfa {
        let mut b = Builder { transitions: Vec::new(), epsilons: Vec::new(), next: 0 };
        let (start, accept) = b.build(r);
        Nfa {
            states: b.next as usize,
            transitions: b.transitions,
            epsilons: b.epsilons,
            start,
            accept,
        }
    }

    /// Per-state outgoing labeled transitions, as an adjacency structure.
    pub fn labeled_adjacency(&self) -> Vec<Vec<(ExtLabel, u32)>> {
        let mut adj = vec![Vec::new(); self.states];
        for &(s, l, t) in &self.transitions {
            adj[s as usize].push((l, t));
        }
        adj
    }

    /// Per-state outgoing ε-transitions.
    pub fn epsilon_adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.states];
        for &(s, t) in &self.epsilons {
            adj[s as usize].push(t);
        }
        adj
    }

    /// The ε-closure of a state set (sorted, deduplicated).
    pub fn epsilon_closure(&self, states: &[u32]) -> Vec<u32> {
        let eps = self.epsilon_adjacency();
        let mut seen = vec![false; self.states];
        let mut stack: Vec<u32> = states.to_vec();
        for &s in states {
            seen[s as usize] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.states as u32).filter(|&s| seen[s as usize]).collect()
    }
}

struct Builder {
    transitions: Vec<(u32, ExtLabel, u32)>,
    epsilons: Vec<(u32, u32)>,
    next: u32,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        let s = self.next;
        self.next += 1;
        s
    }

    /// Returns the fragment's (start, accept).
    fn build(&mut self, r: &Rpq) -> (u32, u32) {
        match r {
            Rpq::Epsilon => {
                let s = self.fresh();
                let t = self.fresh();
                self.epsilons.push((s, t));
                (s, t)
            }
            Rpq::Label(l) => {
                let s = self.fresh();
                let t = self.fresh();
                self.transitions.push((s, *l, t));
                (s, t)
            }
            Rpq::Concat(a, b) => {
                let (sa, ta) = self.build(a);
                let (sb, tb) = self.build(b);
                self.epsilons.push((ta, sb));
                (sa, tb)
            }
            Rpq::Alt(a, b) => {
                let s = self.fresh();
                let t = self.fresh();
                let (sa, ta) = self.build(a);
                let (sb, tb) = self.build(b);
                self.epsilons.push((s, sa));
                self.epsilons.push((s, sb));
                self.epsilons.push((ta, t));
                self.epsilons.push((tb, t));
                (s, t)
            }
            Rpq::Star(a) => {
                let s = self.fresh();
                let t = self.fresh();
                let (sa, ta) = self.build(a);
                self.epsilons.push((s, sa));
                self.epsilons.push((s, t));
                self.epsilons.push((ta, sa));
                self.epsilons.push((ta, t));
                (s, t)
            }
            Rpq::Plus(a) => {
                let (sa, ta) = self.build(a);
                let t = self.fresh();
                self.epsilons.push((ta, sa));
                self.epsilons.push((ta, t));
                (sa, t)
            }
            Rpq::Opt(a) => {
                let s = self.fresh();
                let t = self.fresh();
                let (sa, ta) = self.build(a);
                self.epsilons.push((s, sa));
                self.epsilons.push((s, t));
                self.epsilons.push((ta, t));
                (s, t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate::gex;

    fn word_accepted(nfa: &Nfa, word: &[ExtLabel]) -> bool {
        let mut cur = nfa.epsilon_closure(&[nfa.start]);
        let adj = nfa.labeled_adjacency();
        for &l in word {
            let mut next = Vec::new();
            for &s in &cur {
                for &(tl, t) in &adj[s as usize] {
                    if tl == l {
                        next.push(t);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            cur = nfa.epsilon_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.contains(&nfa.accept)
    }

    #[test]
    fn word_membership() {
        let g = gex();
        let f = g.label_named("f").unwrap().fwd();
        let v = g.label_named("v").unwrap().fwd();
        let cases = [
            ("f", vec![f], true),
            ("f", vec![v], false),
            ("f . v", vec![f, v], true),
            ("f . v", vec![f], false),
            ("f | v", vec![v], true),
            ("f*", vec![], true),
            ("f*", vec![f, f, f], true),
            ("f*", vec![f, v], false),
            ("f+", vec![], false),
            ("f+", vec![f], true),
            ("f?", vec![], true),
            ("f? . v", vec![v], true),
            ("(f . v)* | f", vec![f, v, f, v], true),
            ("(f . v)* | f", vec![f, v, f], false),
        ];
        for (expr, word, expect) in cases {
            let r = crate::parse_rpq(expr, &g).unwrap();
            let nfa = Nfa::compile(&r);
            assert_eq!(word_accepted(&nfa, &word), expect, "{expr} on {word:?}");
        }
    }

    #[test]
    fn nullability_matches_acceptance_of_empty_word() {
        let g = gex();
        for expr in ["f", "f*", "f+", "f?", "f . v", "f* . v*", "(f | eps)"] {
            let r = crate::parse_rpq(expr, &g).unwrap();
            let nfa = Nfa::compile(&r);
            assert_eq!(word_accepted(&nfa, &[]), r.nullable(), "{expr}");
        }
    }
}
