//! The RPQ algebra and its text syntax.

use cpqx_graph::{ExtLabel, Graph};

/// A regular path query expression.
///
/// `RPQ ::= ε | ℓ | ℓ⁻¹ | RPQ·RPQ | RPQ|RPQ | RPQ* | RPQ+ | RPQ?`
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Rpq {
    /// The empty word (identity relation).
    Epsilon,
    /// A single extended label.
    Label(ExtLabel),
    /// Concatenation.
    Concat(Box<Rpq>, Box<Rpq>),
    /// Alternation (union).
    Alt(Box<Rpq>, Box<Rpq>),
    /// Kleene star (zero or more).
    Star(Box<Rpq>),
    /// One or more.
    Plus(Box<Rpq>),
    /// Zero or one.
    Opt(Box<Rpq>),
}

impl Rpq {
    /// A forward label atom.
    pub fn label(l: cpqx_graph::Label) -> Rpq {
        Rpq::Label(l.fwd())
    }

    /// An inverse label atom.
    pub fn inv(l: cpqx_graph::Label) -> Rpq {
        Rpq::Label(l.inv())
    }

    /// `self · other`.
    pub fn then(self, other: Rpq) -> Rpq {
        Rpq::Concat(Box::new(self), Box::new(other))
    }

    /// `self | other`.
    pub fn or(self, other: Rpq) -> Rpq {
        Rpq::Alt(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> Rpq {
        Rpq::Star(Box::new(self))
    }

    /// `self+`.
    pub fn plus(self) -> Rpq {
        Rpq::Plus(Box::new(self))
    }

    /// `self?`.
    pub fn opt(self) -> Rpq {
        Rpq::Opt(Box::new(self))
    }

    /// Whether the language contains the empty word (nullable).
    pub fn nullable(&self) -> bool {
        match self {
            Rpq::Epsilon | Rpq::Star(_) | Rpq::Opt(_) => true,
            Rpq::Label(_) => false,
            Rpq::Concat(a, b) => a.nullable() && b.nullable(),
            Rpq::Alt(a, b) => a.nullable() || b.nullable(),
            Rpq::Plus(a) => a.nullable(),
        }
    }

    /// Whether the expression is star-free (hence CPQ-chain expressible
    /// when it is also alternation-free).
    pub fn is_star_free(&self) -> bool {
        match self {
            Rpq::Epsilon | Rpq::Label(_) => true,
            Rpq::Concat(a, b) | Rpq::Alt(a, b) => a.is_star_free() && b.is_star_free(),
            Rpq::Star(_) | Rpq::Plus(_) => false,
            Rpq::Opt(a) => a.is_star_free(),
        }
    }

    /// Renders the expression in the crate's text syntax using the graph's
    /// label names; output parses back via [`parse_rpq`].
    pub fn to_text(&self, g: &Graph) -> String {
        match self {
            Rpq::Epsilon => "eps".to_string(),
            Rpq::Label(l) => {
                let name = g.label_name(l.base());
                if l.is_inverse() {
                    format!("{name}^-1")
                } else {
                    name.to_string()
                }
            }
            Rpq::Concat(a, b) => format!("({} . {})", a.to_text(g), b.to_text(g)),
            Rpq::Alt(a, b) => format!("({} | {})", a.to_text(g), b.to_text(g)),
            Rpq::Star(a) => format!("({})*", a.to_text(g)),
            Rpq::Plus(a) => format!("({})+", a.to_text(g)),
            Rpq::Opt(a) => format!("({})?", a.to_text(g)),
        }
    }
}

/// Parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpqParseError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for RpqParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rpq parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RpqParseError {}

/// Parses an RPQ expression, resolving label names against `g`.
///
/// Grammar (whitespace-insensitive): `alt := cat ('|' cat)*`,
/// `cat := post (('.'|'∘') post)*`, `post := atom ('*'|'+'|'?')*`,
/// `atom := 'eps' | label['^-1'|'⁻¹'] | '(' alt ')'`.
pub fn parse_rpq(input: &str, g: &Graph) -> Result<Rpq, RpqParseError> {
    let chars: Vec<char> = input.chars().collect();
    let mut p = Parser { chars, pos: 0, byte: 0, graph: g };
    p.skip_ws();
    let r = p.alt()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(p.err("trailing input"));
    }
    Ok(r)
}

struct Parser<'g> {
    chars: Vec<char>,
    pos: usize,
    byte: usize,
    graph: &'g Graph,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> RpqParseError {
        RpqParseError { position: self.byte, message: msg.into() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        self.byte += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
    }

    fn alt(&mut self) -> Result<Rpq, RpqParseError> {
        let mut r = self.cat()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.bump();
                self.skip_ws();
                r = r.or(self.cat()?);
            } else {
                return Ok(r);
            }
        }
    }

    fn cat(&mut self) -> Result<Rpq, RpqParseError> {
        let mut r = self.postfix()?;
        loop {
            self.skip_ws();
            if matches!(self.peek(), Some('.') | Some('∘') | Some('/')) {
                self.bump();
                self.skip_ws();
                r = r.then(self.postfix()?);
            } else {
                return Ok(r);
            }
        }
    }

    fn postfix(&mut self) -> Result<Rpq, RpqParseError> {
        let mut r = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.bump();
                    r = r.star();
                }
                Some('+') => {
                    self.bump();
                    r = r.plus();
                }
                Some('?') => {
                    self.bump();
                    r = r.opt();
                }
                _ => return Ok(r),
            }
        }
    }

    fn atom(&mut self) -> Result<Rpq, RpqParseError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let r = self.alt()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err(self.err("expected `)`"));
                }
                Ok(r)
            }
            Some(c) if c.is_alphanumeric() || c == '_' || c == '@' => {
                let mut name = String::new();
                while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '@') {
                    name.push(self.bump().unwrap());
                }
                if name == "eps" {
                    return Ok(Rpq::Epsilon);
                }
                // Optional inverse suffix.
                let mut inverse = false;
                if self.peek() == Some('^') {
                    let save = (self.pos, self.byte);
                    self.bump();
                    if self.bump() == Some('-') && self.bump() == Some('1') {
                        inverse = true;
                    } else {
                        self.pos = save.0;
                        self.byte = save.1;
                    }
                } else if self.peek() == Some('⁻') {
                    self.bump();
                    if self.bump() != Some('¹') {
                        return Err(self.err("expected `¹` after `⁻`"));
                    }
                    inverse = true;
                }
                let l = self
                    .graph
                    .label_named(&name)
                    .ok_or_else(|| self.err(format!("unknown label {name:?}")))?;
                Ok(Rpq::Label(if inverse { l.inv() } else { l.fwd() }))
            }
            other => Err(self.err(format!("expected atom, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate::gex;

    #[test]
    fn parses_core_forms() {
        let g = gex();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        assert_eq!(parse_rpq("f", &g).unwrap(), Rpq::label(f));
        assert_eq!(parse_rpq("f^-1", &g).unwrap(), Rpq::inv(f));
        assert_eq!(parse_rpq("f . v", &g).unwrap(), Rpq::label(f).then(Rpq::label(v)));
        assert_eq!(parse_rpq("f | v", &g).unwrap(), Rpq::label(f).or(Rpq::label(v)));
        assert_eq!(parse_rpq("f*", &g).unwrap(), Rpq::label(f).star());
        assert_eq!(parse_rpq("f+", &g).unwrap(), Rpq::label(f).plus());
        assert_eq!(parse_rpq("f?", &g).unwrap(), Rpq::label(f).opt());
        assert_eq!(parse_rpq("eps", &g).unwrap(), Rpq::Epsilon);
    }

    #[test]
    fn precedence_star_then_concat_then_alt() {
        let g = gex();
        let f = g.label_named("f").unwrap();
        let v = g.label_named("v").unwrap();
        // f . v* | f = (f . (v*)) | f
        let r = parse_rpq("f . v* | f", &g).unwrap();
        assert_eq!(r, Rpq::label(f).then(Rpq::label(v).star()).or(Rpq::label(f)));
        // (f | v)* parses the group
        let r = parse_rpq("(f | v)*", &g).unwrap();
        assert_eq!(r, Rpq::label(f).or(Rpq::label(v)).star());
    }

    #[test]
    fn nullable_and_star_free() {
        let g = gex();
        assert!(parse_rpq("f*", &g).unwrap().nullable());
        assert!(parse_rpq("f?", &g).unwrap().nullable());
        assert!(!parse_rpq("f+", &g).unwrap().nullable());
        assert!(!parse_rpq("f . v", &g).unwrap().nullable());
        assert!(parse_rpq("f . v | f", &g).unwrap().is_star_free());
        assert!(!parse_rpq("f . v*", &g).unwrap().is_star_free());
    }

    #[test]
    fn errors() {
        let g = gex();
        assert!(parse_rpq("", &g).is_err());
        assert!(parse_rpq("(f", &g).is_err());
        assert!(parse_rpq("f |", &g).is_err());
        assert!(parse_rpq("nosuch", &g).is_err());
        assert!(parse_rpq("f v", &g).is_err(), "juxtaposition is not concatenation");
    }

    #[test]
    fn double_postfix() {
        let g = gex();
        let f = g.label_named("f").unwrap();
        assert_eq!(parse_rpq("f*?", &g).unwrap(), Rpq::label(f).star().opt());
    }
}
