//! Tentris-style worst-case-optimal join evaluation.
//!
//! Stand-in for the tensor-based RDF engine \[6\]: the graph's per-label
//! sorted adjacency doubles as a hypertrie (label → source → targets and
//! label → target → sources via inverse labels). Queries are evaluated by a
//! worst-case-optimal join: variables are eliminated along a static greedy
//! order, and each variable's bindings are the *k-way sorted intersection*
//! (leapfrog style) of every adjacency slice constraining it — contrast
//! with the backtracking engine, which picks one candidate list and
//! verifies the rest edge-at-a-time.

use crate::pattern::PatternGraph;
use cpqx_graph::{Graph, Pair, VertexId};
use cpqx_query::Cpq;
use std::collections::HashSet;

/// The Tentris-style WCOJ engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct TensorEngine;

impl TensorEngine {
    /// Evaluates `q` on `g` under homomorphic semantics.
    pub fn evaluate(&self, g: &Graph, q: &Cpq) -> Vec<Pair> {
        let pattern = PatternGraph::from_cpq(q);
        let mut s = Wcoj::new(g, &pattern, false);
        s.run();
        let mut out: Vec<Pair> = s.results.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Stops at the first answer.
    pub fn evaluate_first(&self, g: &Graph, q: &Cpq) -> Option<Pair> {
        let pattern = PatternGraph::from_cpq(q);
        let mut s = Wcoj::new(g, &pattern, true);
        s.run();
        s.results.into_iter().next()
    }

    /// Evaluates a pre-compiled pattern graph (the CQ front-end's entry
    /// point).
    pub fn evaluate_pattern(&self, g: &Graph, pattern: &PatternGraph) -> Vec<Pair> {
        let mut s = Wcoj::new(g, pattern, false);
        s.run();
        let mut out: Vec<Pair> = s.results.into_iter().collect();
        out.sort_unstable();
        out
    }
}

struct Wcoj<'a> {
    g: &'a Graph,
    p: &'a PatternGraph,
    order: Vec<u32>,
    assign: Vec<Option<VertexId>>,
    results: HashSet<Pair>,
    first_only: bool,
    done: bool,
}

impl<'a> Wcoj<'a> {
    fn new(g: &'a Graph, p: &'a PatternGraph, first_only: bool) -> Self {
        let order = elimination_order(g, p);
        Wcoj {
            g,
            p,
            order,
            assign: vec![None; p.var_count as usize],
            results: HashSet::new(),
            first_only,
            done: false,
        }
    }

    fn run(&mut self) {
        if self.p.edges.is_empty() {
            debug_assert_eq!(self.p.src, self.p.dst);
            for v in self.g.vertices() {
                self.results.insert(Pair::new(v, v));
                if self.first_only {
                    return;
                }
            }
            return;
        }
        self.eliminate(0);
    }

    fn eliminate(&mut self, depth: usize) {
        if self.done {
            return;
        }
        if let (Some(s), Some(t)) =
            (self.assign[self.p.src as usize], self.assign[self.p.dst as usize])
        {
            if self.results.contains(&Pair::new(s, t)) {
                return;
            }
        }
        if depth == self.order.len() {
            let s = self.assign[self.p.src as usize].expect("src bound");
            let t = self.assign[self.p.dst as usize].expect("dst bound");
            self.results.insert(Pair::new(s, t));
            if self.first_only {
                self.done = true;
            }
            return;
        }
        let var = self.order[depth];
        for c in self.bindings(var) {
            self.assign[var as usize] = Some(c);
            self.eliminate(depth + 1);
            self.assign[var as usize] = None;
            if self.done {
                return;
            }
        }
    }

    /// Leapfrog-style bindings: intersect every sorted list constraining
    /// `var`, starting from the smallest.
    fn bindings(&self, var: u32) -> Vec<VertexId> {
        let mut lists: Vec<Vec<VertexId>> = Vec::new();
        let mut loop_labels = Vec::new();
        for e in self.p.incident(var) {
            if e.from == var && e.to == var {
                loop_labels.push(e.label);
                continue;
            }
            if e.from == var {
                match self.assign[e.to as usize] {
                    Some(y) => lists
                        .push(self.g.neighbors(y, e.label.inv()).iter().map(|&(_, t)| t).collect()),
                    None => {
                        // Unbound neighbor: var still must be a source of
                        // the label relation (hypertrie level projection).
                        let mut proj: Vec<VertexId> =
                            self.g.edge_pairs(e.label.fwd()).iter().map(|p| p.src()).collect();
                        proj.dedup();
                        lists.push(proj);
                    }
                }
            } else {
                match self.assign[e.from as usize] {
                    Some(x) => lists
                        .push(self.g.neighbors(x, e.label.fwd()).iter().map(|&(_, t)| t).collect()),
                    None => {
                        let mut proj: Vec<VertexId> =
                            self.g.edge_pairs(e.label.inv()).iter().map(|p| p.src()).collect();
                        proj.dedup();
                        lists.push(proj);
                    }
                }
            }
        }
        let mut result: Vec<VertexId> = match lists.iter().min_by_key(|l| l.len()) {
            Some(smallest) => {
                let mut base = smallest.clone();
                base.sort_unstable();
                base.dedup();
                for list in &lists {
                    if std::ptr::eq(list, smallest) {
                        continue;
                    }
                    let mut sorted = list.clone();
                    sorted.sort_unstable();
                    base = intersect(&base, &sorted);
                    if base.is_empty() {
                        break;
                    }
                }
                base
            }
            None => self.g.vertices().collect(),
        };
        if !loop_labels.is_empty() {
            result.retain(|&c| loop_labels.iter().all(|&l| self.g.has_edge(c, c, l.fwd())));
        }
        result
    }
}

fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Static greedy elimination order: smallest-relation variable first, then
/// repeatedly the cheapest variable adjacent to the chosen prefix.
fn elimination_order(g: &Graph, p: &PatternGraph) -> Vec<u32> {
    let estimate = |v: u32| -> usize {
        p.incident(v)
            .map(|e| {
                let rel = if e.from == v { e.label.fwd() } else { e.label.inv() };
                g.edge_pairs(rel).len()
            })
            .min()
            .unwrap_or(g.vertex_count() as usize)
    };
    let mut order: Vec<u32> = Vec::with_capacity(p.var_count as usize);
    let mut chosen = vec![false; p.var_count as usize];
    while order.len() < p.var_count as usize {
        let mut best: Option<(bool, usize, u32)> = None;
        for v in 0..p.var_count {
            if chosen[v as usize] {
                continue;
            }
            let adjacent = p.incident(v).any(|e| chosen[e.from as usize] || chosen[e.to as usize]);
            // Prefer adjacency to the prefix (false < true ⇒ negate).
            let key = (!(adjacent || order.is_empty()), estimate(v), v);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, v) = best.expect("some variable remains");
        chosen[v as usize] = true;
        order.push(v);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn triad_on_gex() {
        let g = generate::gex();
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(TensorEngine.evaluate(&g, &q), eval_reference(&g, &q));
    }

    #[test]
    fn order_covers_all_vars() {
        let g = generate::gex();
        let q = parse_cpq("((f . f) & f^-1) . v", &g).unwrap();
        let p = PatternGraph::from_cpq(&q);
        let order = elimination_order(&g, &p);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..p.var_count).collect::<Vec<_>>());
    }

    #[test]
    fn homomorphic_semantics() {
        let g = generate::labeled_path(&["a", "b"]);
        let q = parse_cpq("(a . b) & (a . b)", &g).unwrap();
        assert_eq!(TensorEngine.evaluate(&g, &q), vec![Pair::new(0, 2)]);
    }

    #[test]
    fn first_result() {
        let g = generate::gex();
        let q = parse_cpq("v . v^-1", &g).unwrap();
        let all = TensorEngine.evaluate(&g, &q);
        assert!(all.contains(&TensorEngine.evaluate_first(&g, &q).unwrap()));
    }

    #[test]
    fn identity_patterns() {
        let g = generate::gex();
        for src in ["id", "(f . f^-1) & id", "(f . f . f) & id"] {
            let q = parse_cpq(src, &g).unwrap();
            assert_eq!(TensorEngine.evaluate(&g, &q), eval_reference(&g, &q), "{src}");
        }
    }
}
