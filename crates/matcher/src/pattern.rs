//! Compiling a CPQ into a pattern graph for subgraph-matching engines.
//!
//! Evaluating a CPQ "amounts to finding all embeddings of the pattern
//! specified by the query into the graph" (Sec. III-B) under *homomorphic*
//! semantics: distinct pattern variables may map to the same graph vertex.
//! Joins introduce fresh middle variables, conjunctions share endpoints,
//! and `id` unifies the two endpoints of its scope (union-find).

use cpqx_graph::Label;
use cpqx_query::Cpq;

/// One labeled edge of the pattern, always stored in the base-label forward
/// direction (an inverse atom flips its endpoints).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PatternEdge {
    /// Source variable.
    pub from: u32,
    /// Target variable.
    pub to: u32,
    /// Base edge label.
    pub label: Label,
}

/// A query pattern graph with designated source and target variables.
#[derive(Clone, Debug)]
pub struct PatternGraph {
    /// Number of variables after unification.
    pub var_count: u32,
    /// Deduplicated pattern edges.
    pub edges: Vec<PatternEdge>,
    /// The variable bound to answer sources `s`.
    pub src: u32,
    /// The variable bound to answer targets `t` (may equal `src`).
    pub dst: u32,
}

impl PatternGraph {
    /// Compiles a CPQ into its pattern graph.
    pub fn from_cpq(q: &Cpq) -> Self {
        let mut b = Builder { next: 2, uf: UnionFind::new(2), edges: Vec::new() };
        b.lower(q, 0, 1);
        b.finish()
    }

    /// The pattern edges incident to a variable.
    pub fn incident(&self, var: u32) -> impl Iterator<Item = &PatternEdge> + '_ {
        self.edges.iter().filter(move |e| e.from == var || e.to == var)
    }
}

struct Builder {
    next: u32,
    uf: UnionFind,
    edges: Vec<(u32, u32, Label)>,
}

impl Builder {
    fn fresh(&mut self) -> u32 {
        let v = self.next;
        self.next += 1;
        self.uf.grow();
        v
    }

    fn lower(&mut self, q: &Cpq, s: u32, t: u32) {
        match q {
            Cpq::Id => self.uf.union(s, t),
            Cpq::Label(l) => {
                if l.is_inverse() {
                    self.edges.push((t, s, l.base()));
                } else {
                    self.edges.push((s, t, l.base()));
                }
            }
            Cpq::Join(a, b) => {
                let m = self.fresh();
                self.lower(a, s, m);
                self.lower(b, m, t);
            }
            Cpq::Conj(a, b) => {
                self.lower(a, s, t);
                self.lower(b, s, t);
            }
        }
    }

    fn finish(mut self) -> PatternGraph {
        // Canonicalize variables through the union-find, then compact ids.
        let mut remap: Vec<Option<u32>> = vec![None; self.next as usize];
        let mut var_count = 0u32;
        let canon = |v: u32, remap: &mut Vec<Option<u32>>, uf: &mut UnionFind, count: &mut u32| {
            let root = uf.find(v) as usize;
            *remap[root].get_or_insert_with(|| {
                let id = *count;
                *count += 1;
                id
            })
        };
        let src = canon(0, &mut remap, &mut self.uf, &mut var_count);
        let dst = canon(1, &mut remap, &mut self.uf, &mut var_count);
        let mut edges: Vec<PatternEdge> = self
            .edges
            .iter()
            .map(|&(f, t, l)| PatternEdge {
                from: canon(f, &mut remap, &mut self.uf, &mut var_count),
                to: canon(t, &mut remap, &mut self.uf, &mut var_count),
                label: l,
            })
            .collect();
        edges.sort_unstable_by_key(|e| (e.from, e.to, e.label.0));
        edges.dedup();
        PatternGraph { var_count, edges, src, dst }
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: u32) -> Self {
        UnionFind { parent: (0..n).collect() }
    }

    fn grow(&mut self) {
        self.parent.push(self.parent.len() as u32);
    }

    fn find(&mut self, v: u32) -> u32 {
        let p = self.parent[v as usize];
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent[v as usize] = root;
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate::gex;
    use cpqx_query::parse_cpq;

    #[test]
    fn chain_introduces_middle_variable() {
        let g = gex();
        let q = parse_cpq("f . v", &g).unwrap();
        let p = PatternGraph::from_cpq(&q);
        assert_eq!(p.var_count, 3);
        assert_eq!(p.edges.len(), 2);
        assert_ne!(p.src, p.dst);
    }

    #[test]
    fn inverse_flips_edge_direction() {
        let g = gex();
        let p = PatternGraph::from_cpq(&parse_cpq("f^-1", &g).unwrap());
        assert_eq!(p.edges.len(), 1);
        assert_eq!(p.edges[0].from, p.dst);
        assert_eq!(p.edges[0].to, p.src);
    }

    #[test]
    fn conjunction_shares_endpoints() {
        let g = gex();
        // Triangle: (f.f) & f⁻¹ — 3 vars, 3 edges.
        let p = PatternGraph::from_cpq(&parse_cpq("(f . f) & f^-1", &g).unwrap());
        assert_eq!(p.var_count, 3);
        assert_eq!(p.edges.len(), 3);
    }

    #[test]
    fn identity_unifies_endpoints() {
        let g = gex();
        let p = PatternGraph::from_cpq(&parse_cpq("(f . f) & id", &g).unwrap());
        assert_eq!(p.src, p.dst);
        assert_eq!(p.var_count, 2); // s=t plus the middle variable
        assert_eq!(p.edges.len(), 2);
    }

    #[test]
    fn nested_identity_unification_propagates() {
        let g = gex();
        // ((f & id) . v): f's endpoints unify, then v continues from them.
        let p = PatternGraph::from_cpq(&parse_cpq("(f & id) . v", &g).unwrap());
        // Vars: s (=middle), t. The f-edge is a self-loop on s.
        assert_eq!(p.var_count, 2);
        assert!(p.edges.iter().any(|e| e.from == e.to));
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let g = gex();
        let p = PatternGraph::from_cpq(&parse_cpq("f & f", &g).unwrap());
        assert_eq!(p.edges.len(), 1);
    }

    #[test]
    fn bare_id_has_no_edges() {
        let g = gex();
        let p = PatternGraph::from_cpq(&parse_cpq("id", &g).unwrap());
        assert!(p.edges.is_empty());
        assert_eq!(p.src, p.dst);
    }
}
