//! TurboHom++-style homomorphic subgraph matching.
//!
//! Stand-in for the paper's strongest matching baseline \[26\] (closed
//! binary): candidate filtering from the label-indexed adjacency, a dynamic
//! fewest-candidates-first matching order, and backtracking enumeration.
//! Because a CPQ's answer is the *binary projection* onto (s, t), the
//! search prunes any subtree whose (s, t) binding is already in the answer
//! set — once both endpoints are bound, the rest is an existence check,
//! mirroring how TurboHom++'s NEC-style grouping avoids re-enumerating
//! equivalent embeddings.

use crate::pattern::{PatternEdge, PatternGraph};
use cpqx_graph::{Graph, Pair, VertexId};
use cpqx_query::Cpq;
use std::collections::HashSet;

/// The TurboHom++-style engine (stateless; all state lives per query).
#[derive(Debug, Default, Clone, Copy)]
pub struct TurboEngine;

impl TurboEngine {
    /// Evaluates `q` on `g` under homomorphic semantics, returning the
    /// normalized (s, t) pair set.
    pub fn evaluate(&self, g: &Graph, q: &Cpq) -> Vec<Pair> {
        let pattern = PatternGraph::from_cpq(q);
        let mut s = Search::new(g, &pattern, false);
        s.run();
        let mut out: Vec<Pair> = s.results.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Stops at the first embedding (Fig. 7's first-answer measurement).
    pub fn evaluate_first(&self, g: &Graph, q: &Cpq) -> Option<Pair> {
        let pattern = PatternGraph::from_cpq(q);
        let mut s = Search::new(g, &pattern, true);
        s.run();
        s.results.into_iter().next()
    }

    /// Evaluates a pre-compiled pattern graph (the CQ front-end's entry
    /// point — arbitrary basic graph patterns, not just CPQ compilations).
    pub fn evaluate_pattern(&self, g: &Graph, pattern: &PatternGraph) -> Vec<Pair> {
        let mut s = Search::new(g, pattern, false);
        s.run();
        let mut out: Vec<Pair> = s.results.into_iter().collect();
        out.sort_unstable();
        out
    }
}

pub(crate) struct Search<'a> {
    g: &'a Graph,
    p: &'a PatternGraph,
    assign: Vec<Option<VertexId>>,
    pub(crate) results: HashSet<Pair>,
    first_only: bool,
    done: bool,
}

impl<'a> Search<'a> {
    pub(crate) fn new(g: &'a Graph, p: &'a PatternGraph, first_only: bool) -> Self {
        Search {
            g,
            p,
            assign: vec![None; p.var_count as usize],
            results: HashSet::new(),
            first_only,
            done: false,
        }
    }

    pub(crate) fn run(&mut self) {
        if self.p.edges.is_empty() {
            // Pure identity pattern: every vertex embeds.
            debug_assert_eq!(self.p.src, self.p.dst);
            for v in self.g.vertices() {
                self.results.insert(Pair::new(v, v));
                if self.first_only {
                    return;
                }
            }
            return;
        }
        self.search();
    }

    fn search(&mut self) {
        if self.done {
            return;
        }
        // Binary-projection pruning: a bound (s, t) already in the answers
        // cannot contribute anything new.
        if let (Some(s), Some(t)) =
            (self.assign[self.p.src as usize], self.assign[self.p.dst as usize])
        {
            if self.results.contains(&Pair::new(s, t)) {
                return;
            }
        }
        let Some(var) = self.pick_var() else {
            let s = self.assign[self.p.src as usize].expect("src assigned");
            let t = self.assign[self.p.dst as usize].expect("dst assigned");
            self.results.insert(Pair::new(s, t));
            if self.first_only {
                self.done = true;
            }
            return;
        };
        let cands = self.candidates(var);
        for c in cands {
            self.assign[var as usize] = Some(c);
            self.search();
            self.assign[var as usize] = None;
            if self.done {
                return;
            }
        }
    }

    /// Dynamic order: the unassigned variable with the smallest candidate
    /// estimate, preferring variables constrained by an assigned neighbor.
    fn pick_var(&self) -> Option<u32> {
        let mut best: Option<(bool, usize, u32)> = None; // (unconstrained?, est, var)
        for v in 0..self.p.var_count {
            if self.assign[v as usize].is_some() {
                continue;
            }
            let (constrained, est) = self.estimate(v);
            let key = (!constrained, est, v);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, v)| v)
    }

    /// (has an assigned-neighbor constraint, candidate-count estimate).
    fn estimate(&self, var: u32) -> (bool, usize) {
        let mut constrained = false;
        let mut est = usize::MAX;
        for e in self.p.incident(var) {
            let sz = match self.constraint_list(var, e) {
                Some(list) => {
                    constrained = true;
                    list.len()
                }
                None => self.projection_size(var, e),
            };
            est = est.min(sz);
        }
        if est == usize::MAX {
            est = self.g.vertex_count() as usize; // isolated variable
        }
        (constrained, est)
    }

    /// The sorted candidate list induced by `e` if its other endpoint is
    /// assigned: an adjacency slice of the graph.
    fn constraint_list(&self, var: u32, e: &PatternEdge) -> Option<&'a [(u16, VertexId)]> {
        if e.from == var && e.to == var {
            return None; // self-loop: verified, not enumerated
        }
        if e.from == var {
            let y = self.assign[e.to as usize]?;
            Some(self.g.neighbors(y, e.label.inv()))
        } else if e.to == var {
            let x = self.assign[e.from as usize]?;
            Some(self.g.neighbors(x, e.label.fwd()))
        } else {
            None
        }
    }

    fn projection_size(&self, var: u32, e: &PatternEdge) -> usize {
        let rel = if e.from == var { e.label.fwd() } else { e.label.inv() };
        self.g.edge_pairs(rel).len()
    }

    /// Candidate vertices for `var`: the smallest assigned-neighbor
    /// adjacency slice (or a relation projection), verified against every
    /// other incident constraint.
    fn candidates(&self, var: u32) -> Vec<VertexId> {
        // Base list.
        let mut base: Option<Vec<VertexId>> = None;
        let mut base_len = usize::MAX;
        for e in self.p.incident(var) {
            if let Some(list) = self.constraint_list(var, e) {
                if list.len() < base_len {
                    base_len = list.len();
                    base = Some(list.iter().map(|&(_, t)| t).collect());
                }
            }
        }
        let mut cands = match base {
            Some(c) => c,
            None => {
                // No assigned neighbor: project the smallest incident
                // relation onto this variable.
                let mut best: Option<(usize, Vec<VertexId>)> = None;
                for e in self.p.incident(var) {
                    if e.from == var && e.to == var {
                        continue;
                    }
                    let rel = if e.from == var { e.label.fwd() } else { e.label.inv() };
                    let pairs = self.g.edge_pairs(rel);
                    if best.as_ref().is_none_or(|(n, _)| pairs.len() < *n) {
                        let mut proj: Vec<VertexId> = pairs.iter().map(|p| p.src()).collect();
                        proj.dedup(); // pairs sorted source-major
                        best = Some((pairs.len(), proj));
                    }
                }
                match best {
                    Some((_, proj)) => proj,
                    None => self.g.vertices().collect(), // isolated variable
                }
            }
        };
        cands.sort_unstable();
        cands.dedup();
        // Verify all remaining constraints (including self-loops).
        cands.retain(|&c| self.verify(var, c));
        cands
    }

    fn verify(&self, var: u32, c: VertexId) -> bool {
        for e in self.p.incident(var) {
            if e.from == var && e.to == var {
                if !self.g.has_edge(c, c, e.label.fwd()) {
                    return false;
                }
                continue;
            }
            if e.from == var {
                if let Some(y) = self.assign[e.to as usize] {
                    if !self.g.has_edge(c, y, e.label.fwd()) {
                        return false;
                    }
                }
            } else if e.to == var {
                if let Some(x) = self.assign[e.from as usize] {
                    if !self.g.has_edge(x, c, e.label.fwd()) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::parse_cpq;

    #[test]
    fn triad_on_gex() {
        let g = generate::gex();
        let q = parse_cpq("(f . f) & f^-1", &g).unwrap();
        assert_eq!(TurboEngine.evaluate(&g, &q), eval_reference(&g, &q));
        assert_eq!(TurboEngine.evaluate(&g, &q).len(), 3);
    }

    #[test]
    fn homomorphic_not_isomorphic() {
        // Square template with repeated labels on a single 2-path: the two
        // branches may map onto the SAME path (homomorphism). Isomorphic
        // matchers would return nothing here.
        let g = generate::labeled_path(&["a", "b"]);
        let q = parse_cpq("(a . b) & (a . b)", &g).unwrap();
        let result = TurboEngine.evaluate(&g, &q);
        assert_eq!(result, vec![Pair::new(0, 2)]);
    }

    #[test]
    fn first_result_consistency() {
        let g = generate::gex();
        let q = parse_cpq("f . f", &g).unwrap();
        let all = TurboEngine.evaluate(&g, &q);
        let first = TurboEngine.evaluate_first(&g, &q).unwrap();
        assert!(all.contains(&first));
        let empty = parse_cpq("(v . v) & f", &g).unwrap();
        assert!(TurboEngine.evaluate_first(&g, &empty).is_none());
    }

    #[test]
    fn identity_patterns() {
        let g = generate::gex();
        for src in ["id", "(f . f^-1) & id", "(f . f . f) & id"] {
            let q = parse_cpq(src, &g).unwrap();
            assert_eq!(TurboEngine.evaluate(&g, &q), eval_reference(&g, &q), "{src}");
        }
    }
}
