//! A conjunctive-query (basic graph pattern) front-end.
//!
//! CQ is the second backbone language of practical graph querying
//! (Sec. II): a set of triple patterns over variables, evaluated
//! homomorphically, with a projection. CPQ is its binary-output,
//! treewidth-≤2 fragment, and "every CQ can be evaluated in terms of its
//! CPQ sub-queries"; this module provides the CQ side of that bridge — a
//! builder plus a tiny text syntax, compiled into the same
//! [`PatternGraph`] the matching engines execute, with the projection
//! mapped onto the pattern's (src, dst) pair.
//!
//! ```text
//! ?x ?z : ?x cites ?y ; ?y supervises ?z ; ?x worksIn^-1 ?w
//! ```

use crate::pattern::{PatternEdge, PatternGraph};
use crate::tensor::TensorEngine;
use crate::turbo::TurboEngine;
use cpqx_graph::{Graph, Pair};
use std::collections::HashMap;

/// Variable identifier inside one [`Cq`].
pub type VarId = u32;

/// A conjunctive query: triple patterns plus a binary projection.
#[derive(Clone, Debug)]
pub struct Cq {
    names: Vec<String>,
    index: HashMap<String, VarId>,
    /// `(subject, label, object)` triples; inverse atoms are normalized to
    /// forward direction at construction.
    triples: Vec<(VarId, cpqx_graph::Label, VarId)>,
    output: Option<(VarId, VarId)>,
}

impl Cq {
    /// Creates an empty query.
    pub fn new() -> Self {
        Cq { names: Vec::new(), index: HashMap::new(), triples: Vec::new(), output: None }
    }

    /// Interns a variable by name.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = self.names.len() as VarId;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), v);
        v
    }

    /// Adds the triple pattern `s -label→ o`.
    pub fn triple(&mut self, s: VarId, label: cpqx_graph::Label, o: VarId) -> &mut Self {
        self.triples.push((s, label, o));
        self
    }

    /// Sets the output projection `(x, y)` (answers are `(µ(x), µ(y))` over
    /// all homomorphisms µ).
    pub fn project(&mut self, x: VarId, y: VarId) -> &mut Self {
        self.output = Some((x, y));
        self
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.names.len()
    }

    /// Number of triple patterns.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// Compiles to the engines' pattern-graph form.
    ///
    /// # Panics
    /// Panics if no projection was set.
    pub fn to_pattern_graph(&self) -> PatternGraph {
        let (x, y) = self.output.expect("CQ needs a projection — call project()");
        let edges = self
            .triples
            .iter()
            .map(|&(s, l, o)| PatternEdge { from: s, to: o, label: l })
            .collect::<Vec<_>>();
        let mut edges = edges;
        edges.sort_unstable_by_key(|e| (e.from, e.to, e.label.0));
        edges.dedup();
        PatternGraph { var_count: self.names.len() as u32, edges, src: x, dst: y }
    }

    /// Evaluates via the TurboHom++-style backtracking engine.
    pub fn evaluate_turbo(&self, g: &Graph) -> Vec<Pair> {
        TurboEngine.evaluate_pattern(g, &self.to_pattern_graph())
    }

    /// Evaluates via the Tentris-style WCOJ engine.
    pub fn evaluate_tensor(&self, g: &Graph) -> Vec<Pair> {
        TensorEngine.evaluate_pattern(g, &self.to_pattern_graph())
    }
}

impl Default for Cq {
    fn default() -> Self {
        Self::new()
    }
}

/// CQ parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqParseError(
    /// Description of the failure.
    pub String,
);

impl std::fmt::Display for CqParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cq parse error: {}", self.0)
    }
}

impl std::error::Error for CqParseError {}

/// Parses the mini CQ syntax:
/// `?x ?y : ?s label ?o ; ?s2 label2^-1 ?o2 ; …` — projection variables
/// before the colon, `;`-separated triple patterns after it; `label^-1`
/// flips subject and object.
pub fn parse_cq(input: &str, g: &Graph) -> Result<Cq, CqParseError> {
    let (head, body) =
        input.split_once(':').ok_or_else(|| CqParseError("expected `?x ?y : patterns`".into()))?;
    let mut cq = Cq::new();
    let outs: Vec<&str> = head.split_whitespace().collect();
    if outs.len() != 2 {
        return Err(CqParseError(format!("expected exactly two output variables, got {outs:?}")));
    }
    let parse_var = |cq: &mut Cq, tok: &str| -> Result<VarId, CqParseError> {
        let name = tok
            .strip_prefix('?')
            .ok_or_else(|| CqParseError(format!("variables start with `?`, got {tok:?}")))?;
        if name.is_empty() {
            return Err(CqParseError("empty variable name".into()));
        }
        Ok(cq.var(name))
    };
    let x = parse_var(&mut cq, outs[0])?;
    let y = parse_var(&mut cq, outs[1])?;
    cq.project(x, y);
    for pat in body.split(';') {
        let toks: Vec<&str> = pat.split_whitespace().collect();
        if toks.is_empty() {
            continue;
        }
        if toks.len() != 3 {
            return Err(CqParseError(format!("triple pattern needs 3 tokens, got {toks:?}")));
        }
        let s = parse_var(&mut cq, toks[0])?;
        let o = parse_var(&mut cq, toks[2])?;
        let (name, inverse) = match toks[1].strip_suffix("^-1") {
            Some(base) => (base, true),
            None => (toks[1], false),
        };
        let label =
            g.label_named(name).ok_or_else(|| CqParseError(format!("unknown label {name:?}")))?;
        if inverse {
            cq.triple(o, label, s);
        } else {
            cq.triple(s, label, o);
        }
    }
    if cq.triple_count() == 0 {
        return Err(CqParseError("query has no triple patterns".into()));
    }
    Ok(cq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_query::eval::eval_reference;
    use cpqx_query::Cpq;

    #[test]
    fn chain_cq_equals_cpq() {
        // ?x ?z : ?x f ?y ; ?y f ?z ≡ the CPQ f∘f.
        let g = generate::gex();
        let cq = parse_cq("?x ?z : ?x f ?y ; ?y f ?z", &g).unwrap();
        let f = g.label_named("f").unwrap();
        let cpq = Cpq::label(f).join(Cpq::label(f));
        let expected = eval_reference(&g, &cpq);
        assert_eq!(cq.evaluate_turbo(&g), expected);
        assert_eq!(cq.evaluate_tensor(&g), expected);
    }

    #[test]
    fn triangle_cq_equals_cpq() {
        let g = generate::gex();
        let cq = parse_cq("?x ?y : ?x f ?m ; ?m f ?y ; ?y f ?x", &g).unwrap();
        let f = g.label_named("f").unwrap();
        let cpq = Cpq::label(f).join(Cpq::label(f)).conj(Cpq::inv(f));
        assert_eq!(cq.evaluate_turbo(&g), eval_reference(&g, &cpq));
    }

    #[test]
    fn inverse_atom_flips() {
        let g = generate::gex();
        let a = parse_cq("?x ?y : ?x f^-1 ?y", &g).unwrap();
        let b = parse_cq("?x ?y : ?y f ?x", &g).unwrap();
        assert_eq!(a.evaluate_turbo(&g), b.evaluate_turbo(&g));
    }

    #[test]
    fn projection_beyond_chain_endpoints() {
        // Project the two *leaves* of a 2-star: ?a ←f– ?c –f→ ?b, output
        // (?a, ?b) — not expressible as one CPQ chain between a and b
        // without inverses, but trivially a CQ.
        let g = generate::star(4, "f");
        let cq = parse_cq("?a ?b : ?c f ?a ; ?c f ?b", &g).unwrap();
        let result = cq.evaluate_turbo(&g);
        // Homomorphic: a = b allowed → all ordered leaf pairs (4 × 4).
        assert_eq!(result.len(), 16);
        assert_eq!(result, cq.evaluate_tensor(&g));
    }

    #[test]
    fn engines_agree_on_random_cqs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = generate::random_graph(&generate::RandomGraphConfig::social(40, 160, 3, 1));
        for case in 0..15 {
            let mut cq = Cq::new();
            let nvars = rng.gen_range(2..5u32);
            let vars: Vec<VarId> = (0..nvars).map(|i| cq.var(&format!("v{i}"))).collect();
            for _ in 0..rng.gen_range(1..5) {
                let s = vars[rng.gen_range(0..vars.len())];
                let o = vars[rng.gen_range(0..vars.len())];
                let l = cpqx_graph::Label(rng.gen_range(0..g.base_label_count()));
                cq.triple(s, l, o);
            }
            cq.project(vars[0], vars[vars.len() - 1]);
            assert_eq!(cq.evaluate_turbo(&g), cq.evaluate_tensor(&g), "case {case}");
        }
    }

    #[test]
    fn parse_errors() {
        let g = generate::gex();
        assert!(parse_cq("?x ?y ?z : ?x f ?y", &g).is_err());
        assert!(parse_cq("?x ?y", &g).is_err());
        assert!(parse_cq("?x ?y : ?x nosuch ?y", &g).is_err());
        assert!(parse_cq("?x ?y : x f ?y", &g).is_err());
        assert!(parse_cq("?x ?y : ", &g).is_err());
    }
}
