//! Homomorphic subgraph-matching baselines for CPQ evaluation.
//!
//! The paper compares CPQx against TurboHom++ (the state-of-the-art
//! homomorphic subgraph-matching algorithm, \[26\]) and Tentris (the
//! state-of-the-art tensor-based RDF engine, \[6\]). Neither is available
//! as source, so this crate reimplements both *in spirit*, preserving the
//! algorithmic character the comparison depends on:
//!
//! * [`turbo::TurboEngine`] — candidate-filtered backtracking with a
//!   dynamic fewest-candidates-first matching order;
//! * [`tensor::TensorEngine`] — worst-case-optimal join over the per-label
//!   adjacency treated as a hypertrie, with leapfrog-style sorted
//!   intersections per variable.
//!
//! Both compile the CPQ into a [`pattern::PatternGraph`] (conjunction
//! merges endpoints, `id` unifies via union-find) and evaluate under
//! **homomorphic** semantics — Sec. II notes isomorphic matchers "can
//! return incorrect results when processing CPQ", which the tests
//! demonstrate. Because CPQ answers are binary projections, both engines
//! short-circuit to an existence check once source and target are bound.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cq;
pub mod pattern;
pub mod tensor;
pub mod turbo;

pub use cq::{parse_cq, Cq};
pub use pattern::PatternGraph;
pub use tensor::TensorEngine;
pub use turbo::TurboEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use cpqx_graph::generate;
    use cpqx_graph::ExtLabel;
    use cpqx_query::ast::Template;
    use cpqx_query::eval::eval_reference;
    use rand::{Rng, SeedableRng};

    #[test]
    fn both_engines_match_reference_on_all_templates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for seed in 0..3u64 {
            let cfg = generate::RandomGraphConfig::social(50, 200, 3, seed);
            let g = generate::random_graph(&cfg);
            for t in Template::ALL {
                for _ in 0..3 {
                    let labels: Vec<ExtLabel> = (0..t.arity())
                        .map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count())))
                        .collect();
                    let q = t.instantiate(&labels);
                    let expected = eval_reference(&g, &q);
                    assert_eq!(
                        TurboEngine.evaluate(&g, &q),
                        expected,
                        "turbo {} {labels:?}",
                        t.name()
                    );
                    assert_eq!(
                        TensorEngine.evaluate(&g, &q),
                        expected,
                        "tensor {} {labels:?}",
                        t.name()
                    );
                }
            }
        }
    }

    #[test]
    fn engines_agree_on_gmark() {
        let g = generate::gmark(300, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for t in [Template::T, Template::S, Template::TC, Template::Si] {
            let labels: Vec<ExtLabel> =
                (0..t.arity()).map(|_| ExtLabel(rng.gen_range(0..g.ext_label_count()))).collect();
            let q = t.instantiate(&labels);
            assert_eq!(TurboEngine.evaluate(&g, &q), TensorEngine.evaluate(&g, &q), "{}", t.name());
        }
    }
}
