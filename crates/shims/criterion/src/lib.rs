//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local
//! package provides the API subset the bench targets use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurements are plain
//! wall-clock timings (median of per-iteration averages over a few batches)
//! printed to stdout — no statistics, plots or baselines. Bench binaries
//! must set `harness = false`, exactly as with upstream criterion.
//!
//! Environment knobs: `CRITERION_SHIM_BATCHES` (default 5) and
//! `CRITERION_SHIM_MIN_ITERS` (default 1) trade precision for runtime.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Runs the closure under timing; handed to bench closures.
pub struct Bencher {
    batches: u32,
    min_iters: u64,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `f`, recording the median per-iteration duration across
    /// batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate the per-batch iteration count so a batch takes ≥ ~20ms.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = ((Duration::from_millis(20).as_nanos() / once.as_nanos()).max(1) as u64)
            .min(1_000_000)
            .max(self.min_iters);
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.batches as usize);
        for _ in 0..self.batches {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(t0.elapsed() / iters as u32);
        }
        per_iter.sort_unstable();
        self.last = Some(per_iter[per_iter.len() / 2]);
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        batches: env_u64("CRITERION_SHIM_BATCHES", 5) as u32,
        min_iters: env_u64("CRITERION_SHIM_MIN_ITERS", 1),
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(d) => println!("{name:<48} {:>14.3} ns/iter", d.as_nanos() as f64),
        None => println!("{name:<48} {:>14} (no measurement)", "-"),
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'c> {
    name: String,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` labeled by `id` (no input).
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup { name, _parent: self }
    }

    /// Benchmarks a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Prints the closing summary (upstream API compatibility).
    pub fn final_summary(&mut self) {
        println!("-- criterion(shim) done");
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Groups bench functions under one entry point, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_SHIM_BATCHES", "2");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        g.finish();
        std::env::remove_var("CRITERION_SHIM_BATCHES");
    }
}
