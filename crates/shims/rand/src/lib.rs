//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! package provides the (small) subset of the `rand 0.8` API the repository
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range`, `gen_bool` and `gen`. The generator is a fixed
//! xoshiro256** seeded via splitmix64 — deterministic across platforms,
//! which is all the seeded tests and workload generators require. The
//! streams differ from upstream `rand`, so absolute random draws are not
//! reproducible against upstream, only against this shim.

#![warn(missing_docs)]

/// Seeding interface (mirrors `rand::SeedableRng` for the one constructor
/// the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (stand-in for `rand`'s `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`] (stand-in for `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Random-value interface (mirrors the `rand::Rng` methods the workspace
/// uses).
pub trait Rng {
    /// The next 64 raw random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; seeded via splitmix64 like the upstream `seed_from_u64`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0u32..17);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0u32..17));
        }
        let mut c = StdRng::seed_from_u64(7);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distributions_cover_supported_calls() {
        let mut rng = StdRng::seed_from_u64(1);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let _ = rng.gen_bool(0.5);
        assert!(rng.gen_range(0..=10u32) <= 10);
        assert_eq!(rng.gen_range(3usize..4), 3);
        let x = rng.gen_range(2..5u32);
        assert!((2..5).contains(&x));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
