//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local
//! package reimplements the subset of the proptest API the repository's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, strategies for integer
//! ranges, tuples, [`Just`], `prop::bool::ANY`, `prop::collection::vec`,
//! `any::<T>()`, the [`prop_oneof!`] union macro (weighted and unweighted),
//! and the [`proptest!`] test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (no persisted failure file). Failing cases **are
//! shrunk**: integers greedily halve toward their lower bound, vectors
//! drop halves and single elements before shrinking elements in place,
//! tuples shrink one component at a time (see [`Strategy::shrink`]).
//! Shrinking re-runs the test body under `catch_unwind`, keeps the last
//! input that still fails, prints it with `Debug`, and finally replays it
//! un-caught so the test fails with the genuine assertion message.
//! Generated values must be `Clone + Debug` (every strategy in this
//! workspace produces such values). Shrinking is deterministic, so a
//! reported minimal case is reproducible by re-running the test.

#![warn(missing_docs)]

use std::rc::Rc;

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Test-runner configuration (`with_cases` is the only knob the workspace
/// uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator: a deterministic function of the per-case RNG, plus
/// a shrinking relation used to minimize failing cases.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, ordered most-aggressive
    /// first (the greedy shrinker takes the first candidate that still
    /// fails). The default is no candidates — strategies that cannot
    /// invert their construction (`prop_map`, `prop_flat_map`, unions)
    /// simply stop shrinking there, exactly like a fixed point.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: up to `depth` nested applications of `recurse`
    /// around `self` as the leaf case. `_desired_size` and
    /// `_expected_branch_size` are accepted for upstream signature
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(strat).boxed();
            strat = Union::new(vec![(1, leaf.clone()), (2, expanded)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the held value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(
    /// The value to produce.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Greedy integer shrink candidates toward `lo`: the bound itself, the
/// midpoint, and the predecessor — most aggressive first.
fn shrink_toward<T>(lo: T, v: T) -> Vec<T>
where
    T: Copy
        + PartialOrd
        + std::ops::Add<Output = T>
        + std::ops::Sub<Output = T>
        + std::ops::Div<Output = T>
        + From<u8>,
{
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo, lo + (v - lo) / T::from(2u8), v - T::from(1u8)];
    out.dedup();
    out.retain(|c| *c < v);
    out
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            // One component shrinks at a time, the others stay fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

/// Types with a canonical "any value" strategy (stand-in for upstream's
/// `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Simplification candidates for shrinking, most aggressive first
    /// (default: none).
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<Self> {
                shrink_toward(0, *self)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
            // Shrink toward zero from either side.
            fn shrink_value(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, if v > 0 { v - 1 } else { v + 1 }];
                out.dedup();
                out.retain(|&c| if v > 0 { c >= 0 && c < v } else { c <= 0 && c > v });
                out
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced helper strategies (`prop::bool::ANY`,
/// `prop::collection::vec`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Strategy generating either boolean.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        impl super::super::Strategy for BoolAny {
            type Value = bool;
            fn new_value(&self, rng: &mut super::super::TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
            fn shrink(&self, value: &bool) -> Vec<bool> {
                if *value {
                    vec![false]
                } else {
                    Vec::new()
                }
            }
        }

        /// Either `true` or `false`, uniformly.
        pub const ANY: BoolAny = BoolAny;
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for vectors with sizes drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// A `Vec<T>` strategy: `size` elements drawn from `elem`, where
        /// the length is uniform in `size` (a half-open range).
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { elem, min: size.start, max: size.end }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.min + rng.below((self.max - self.min) as u64) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
            // Structural shrinks first (shorter vectors), then element
            // shrinks in place — the classic collection ordering, so the
            // greedy minimizer drops irrelevant elements before it
            // simplifies the ones that matter.
            fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
                let mut out: Vec<Vec<S::Value>> = Vec::new();
                let n = value.len();
                // Aggressive: cut to the minimum length, then halves.
                if n > self.min {
                    out.push(value[..self.min].to_vec());
                    let half = self.min.max(n / 2);
                    if half < n {
                        out.push(value[..half].to_vec());
                        out.push(value[n - half..].to_vec());
                    }
                }
                // Remove each single element.
                if n > self.min {
                    for i in 0..n {
                        let mut v = value.clone();
                        v.remove(i);
                        out.push(v);
                    }
                }
                // Shrink each element in place. (No identity filtering
                // needed: the structural candidates above are all
                // strictly shorter, and element strategies never return
                // the value itself as its own candidate.)
                for i in 0..n {
                    for cand in self.elem.shrink(&value[i]) {
                        let mut v = value.clone();
                        v[i] = cand;
                        out.push(v);
                    }
                }
                out
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        shrink_failure, ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Weighted (`w => strat`) or unweighted union of strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Assertion macro usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion macro usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion macro usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: all bindings are drawn as one
/// tuple (component draws hit the RNG in declaration order, exactly like
/// the pre-shrinking per-binding draws did, so deterministic cases are
/// unchanged), and each case runs through [`run_case`], which shrinks on
/// failure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            let __run = $crate::typed_runner(&__strategy, |($($pat,)+)| { $body });
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    0xC0FF_EE00_u64 ^ ((__case as u64) << 16) ^ (line!() as u64),
                );
                let __value = $crate::Strategy::new_value(&__strategy, &mut __rng);
                $crate::run_case(&__strategy, __case, __value, &__run);
            }
        }
    )*};
}

/// Pins a closure's parameter to `S::Value` so pattern parameters in
/// [`proptest!`] bodies type-check without annotations (closure bodies
/// call methods on the bound values before inference would otherwise
/// reach the [`run_case`] constraint).
#[doc(hidden)]
pub fn typed_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(S::Value),
{
    run
}

/// Runs one generated case, minimizing and reporting on failure — the
/// engine behind [`proptest!`]. The body runs under `catch_unwind`; if it
/// panics, the input is greedily shrunk via [`shrink_failure`], the
/// minimal failing input is printed with `Debug`, and the minimized case
/// is replayed *uncaught* so the test fails with the genuine assertion
/// message. (Shrink re-runs print their panic messages too — noise that
/// only ever appears on an already-failing test.)
#[doc(hidden)]
pub fn run_case<S, F>(strategy: &S, case: u32, value: S::Value, run: &F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value),
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    if catch_unwind(AssertUnwindSafe(|| run(value.clone()))).is_ok() {
        return;
    }
    eprintln!("proptest(shim): deterministic case #{case} failed; shrinking…");
    let (minimal, attempts) = shrink_failure(strategy, value, &|v: &S::Value| {
        catch_unwind(AssertUnwindSafe(|| run(v.clone()))).is_err()
    });
    eprintln!(
        "proptest(shim): case #{case} minimal failing input \
         (after {attempts} shrink attempt(s)): {minimal:?}"
    );
    run(minimal);
    unreachable!("proptest(shim): minimized case stopped failing on replay");
}

/// Greedily minimizes a failing `value`: repeatedly takes the first
/// [`Strategy::shrink`] candidate on which `fails` still returns `true`,
/// until no candidate fails or the attempt budget runs out. Returns the
/// minimized value and the number of candidates evaluated. Deterministic;
/// public so the shrinker itself is unit-testable.
pub fn shrink_failure<S>(
    strategy: &S,
    mut value: S::Value,
    fails: &dyn Fn(&S::Value) -> bool,
) -> (S::Value, usize)
where
    S: Strategy,
    S::Value: Clone,
{
    const MAX_ATTEMPTS: usize = 1024;
    let mut attempts = 0;
    'outer: while attempts < MAX_ATTEMPTS {
        for cand in strategy.shrink(&value) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            attempts += 1;
            if fails(&cand) {
                value = cand;
                continue 'outer;
            }
        }
        break;
    }
    (value, attempts)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let strat = (0u32..10, 5u64..6, 0u8..255);
        for _ in 0..100 {
            let (a, b, c) = strat.new_value(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
            assert!(c < 255);
        }
    }

    #[test]
    fn oneof_respects_zero_weighted_arms() {
        let mut rng = TestRng::new(2);
        let strat = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut rng), 1);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Expr {
            Leaf(#[allow(dead_code)] u32),
            Pair(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::Leaf(_) => 0,
                Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..5).prop_map(Expr::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.new_value(&mut rng)) <= 3);
        }
    }

    #[test]
    fn collection_vec_sizes() {
        let mut rng = TestRng::new(4);
        let strat = prop::collection::vec(0u32..3, 2..5);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn integer_shrink_reaches_the_boundary() {
        // Greedy halving must land exactly on the smallest failing value.
        let strat = 0u32..1_000;
        let fails = |v: &u32| *v >= 17;
        for start in [17u32, 18, 100, 999] {
            let (minimal, attempts) = crate::shrink_failure(&strat, start, &fails);
            assert_eq!(minimal, 17, "from {start}");
            assert!(attempts > 0 || start == 17);
        }
        // Non-zero lower bounds shrink toward the bound, not zero.
        let strat = 5u32..100;
        let (minimal, _) = crate::shrink_failure(&strat, 80, &|_| true);
        assert_eq!(minimal, 5);
        // A value no candidate of which fails stays put.
        let (minimal, _) = crate::shrink_failure(&(0u32..100), 42, &|v| *v == 42);
        assert_eq!(minimal, 42);
    }

    #[test]
    fn signed_shrink_approaches_zero_from_both_sides() {
        for v in [-37i32, 54] {
            let candidates = v.shrink_value();
            assert!(!candidates.is_empty());
            assert!(candidates.contains(&0));
            for c in candidates {
                assert!(c.abs() < v.abs(), "{c} does not simplify {v}");
            }
        }
        assert!(0i32.shrink_value().is_empty());
        // i64::MIN must not overflow while shrinking.
        assert!(i64::MIN.shrink_value().iter().all(|&c| c > i64::MIN && c <= 0));
    }

    #[test]
    fn vec_shrink_removes_irrelevant_elements() {
        // Failure depends on one offending element: shrinking must strip
        // everything else and minimize the offender.
        let strat = prop::collection::vec(0u32..100, 0..10);
        let fails = |v: &Vec<u32>| v.iter().any(|&x| x >= 30);
        let start = vec![3, 99, 7, 0, 55, 2];
        let (minimal, _) = crate::shrink_failure(&strat, start, &fails);
        assert_eq!(minimal, vec![30], "greedy minimum is one boundary element");
        // Minimum length is respected.
        let strat = prop::collection::vec(0u32..100, 2..10);
        let (minimal, _) = crate::shrink_failure(&strat, vec![9, 9, 9, 9], &|_| true);
        assert_eq!(minimal.len(), 2);
        // A locally minimal vector has no failing candidates left.
        let strat = prop::collection::vec(0u32..100, 0..10);
        for cand in Strategy::shrink(&strat, &vec![30u32]) {
            assert!(!fails(&cand), "{cand:?} still fails — not minimal");
        }
    }

    #[test]
    fn tuple_and_bool_shrink_componentwise() {
        let strat = (0u32..50, prop::bool::ANY);
        let fails = |v: &(u32, bool)| v.0 >= 10;
        let (minimal, _) = crate::shrink_failure(&strat, (49, true), &fails);
        assert_eq!(minimal, (10, false), "both components minimize");
        // Boxed strategies forward shrinking.
        let boxed = (0u32..1_000).boxed();
        let (minimal, _) = crate::shrink_failure(&boxed, 500, &|v| *v >= 123);
        assert_eq!(minimal, 123);
    }

    #[test]
    fn shrink_candidates_never_include_the_value_itself() {
        let vec_strat = prop::collection::vec(0u32..10, 0..6);
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = vec_strat.new_value(&mut rng);
            assert!(!Strategy::shrink(&vec_strat, &v).contains(&v));
            let i = (0u32..10).new_value(&mut rng);
            assert!(!Strategy::shrink(&(0u32..10), &i).contains(&i));
        }
    }

    #[test]
    fn failing_property_reports_minimized_case() {
        // End-to-end through run_case: the replayed (minimized) failure
        // must surface the genuine assertion panic.
        let strat = (0u64..1_000,);
        let run = |(v,): (u64,)| assert!(v < 250, "tripwire {v}");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_case(&strat, 0, (999,), &run);
        }))
        .expect_err("case must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("tripwire 250"), "panic must replay the minimal case: {msg}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), flag in prop::bool::ANY) {
            prop_assert!(a < 10 && b < 10);
            let _ = flag;
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..9, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
