//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local
//! package reimplements the subset of the proptest API the repository's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive` / `boxed`, strategies for integer
//! ranges, tuples, [`Just`], `prop::bool::ANY`, `prop::collection::vec`,
//! `any::<T>()`, the [`prop_oneof!`] union macro (weighted and unweighted),
//! and the [`proptest!`] test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (no persisted failure file) and failing cases are **not
//! shrunk** — the panic message reports the case number so the failure can
//! be replayed by running the test again (generation is deterministic).

#![warn(missing_docs)]

use std::rc::Rc;

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Test-runner configuration (`with_cases` is the only knob the workspace
/// uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike upstream proptest there is no shrinking: a
/// strategy is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: up to `depth` nested applications of `recurse`
    /// around `self` as the leaf case. `_desired_size` and
    /// `_expected_branch_size` are accepted for upstream signature
    /// compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(strat).boxed();
            strat = Union::new(vec![(1, leaf.clone()), (2, expanded)]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the held value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(
    /// The value to produce.
    pub T,
);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (stand-in for upstream's
/// `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced helper strategies (`prop::bool::ANY`,
/// `prop::collection::vec`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Strategy generating either boolean.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        impl super::super::Strategy for BoolAny {
            type Value = bool;
            fn new_value(&self, rng: &mut super::super::TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// Either `true` or `false`, uniformly.
        pub const ANY: BoolAny = BoolAny;
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for vectors with sizes drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// A `Vec<T>` strategy: `size` elements drawn from `elem`, where
        /// the length is uniform in `size` (a half-open range).
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty size range");
            VecStrategy { elem, min: size.start, max: size.end }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.min + rng.below((self.max - self.min) as u64) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Weighted (`w => strat`) or unweighted union of strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Assertion macro usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion macro usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion macro usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    0xC0FF_EE00_u64 ^ ((__case as u64) << 16) ^ (line!() as u64),
                );
                $(
                    let __strategy = $strat;
                    let $pat = $crate::Strategy::new_value(&__strategy, &mut __rng);
                )+
                let __guard = $crate::CaseReporter { case: __case };
                { $body }
                std::mem::forget(__guard);
            }
        }
    )*};
}

/// Prints the failing case number when a property-test body panics (our
/// substitute for upstream's shrink-and-persist machinery).
#[doc(hidden)]
pub struct CaseReporter {
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        eprintln!("proptest(shim): failure in deterministic case #{}", self.case);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let strat = (0u32..10, 5u64..6, 0u8..255);
        for _ in 0..100 {
            let (a, b, c) = strat.new_value(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
            assert!(c < 255);
        }
    }

    #[test]
    fn oneof_respects_zero_weighted_arms() {
        let mut rng = TestRng::new(2);
        let strat = prop_oneof![1 => Just(1u32), 0 => Just(2u32)];
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut rng), 1);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Expr {
            Leaf(#[allow(dead_code)] u32),
            Pair(Box<Expr>, Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::Leaf(_) => 0,
                Expr::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..5).prop_map(Expr::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert!(depth(&strat.new_value(&mut rng)) <= 3);
        }
    }

    #[test]
    fn collection_vec_sizes() {
        let mut rng = TestRng::new(4);
        let strat = prop::collection::vec(0u32..3, 2..5);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), flag in prop::bool::ANY) {
            prop_assert!(a < 10 && b < 10);
            let _ = flag;
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..9, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
